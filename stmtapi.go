package fastframe

import (
	"context"

	"fastframe/internal/sql"
)

// Stmt is a prepared statement: the SQL text is compiled once by
// Engine.Prepare and then run any number of times with different bound
// arguments — the compile-once / run-many half of the interactive
// query loop. Value positions written as the positional parameter '?'
// (WHERE values and IN members, BETWEEN and comparison bounds, the
// HAVING threshold, the WITHIN target, LIMIT, and PARALLEL) are bound
// per run, in text order:
//
//	stmt, _ := eng.Prepare(
//	    "SELECT AVG(DepDelay) FROM flights WHERE Origin = ? GROUP BY Airline WITHIN ?%")
//	res, _ := stmt.Query(ctx, "ORD", 5.0)
//	res, _ = stmt.Query(ctx, "LAX", 2.5)
//
// Binding is typed per slot — string slots take strings, numeric slots
// any Go numeric type, LIMIT/PARALLEL slots positive integers — and a
// mismatch fails before any scanning starts, with an error carrying
// the byte offset of the offending '?'. A Stmt is immutable and safe
// for concurrent use; each run binds into a private copy of the plan.
type Stmt struct {
	eng  *Engine
	tmpl *sql.Template
	opts []Option
}

// Prepare compiles one SQL statement (through the engine's plan cache)
// without executing it. The options become the statement's baseline
// execution configuration for every run; per-run overrides are
// available via Bind followed by BoundStmt.Query. The FROM table is
// resolved at run time, so a statement may be prepared before its
// table is registered.
func (e *Engine) Prepare(sqlText string, opts ...Option) (*Stmt, error) {
	tmpl, err := e.template(sqlText)
	if err != nil {
		return nil, err
	}
	return &Stmt{eng: e, tmpl: tmpl, opts: append([]Option(nil), opts...)}, nil
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.tmpl.Source() }

// NumParams returns the number of '?' placeholders the statement
// declares (the arguments every run must bind).
func (s *Stmt) NumParams() int { return s.tmpl.NumParams() }

// Explain renders the statement's full logical plan, including its
// parameter slots, without executing it.
func (s *Stmt) Explain() string { return s.tmpl.Explain() }

// Bind type-checks one argument per '?' placeholder (in text order)
// and returns the bound, planned statement. Binding never mutates the
// Stmt, so concurrent Binds with different arguments are safe.
func (s *Stmt) Bind(args ...any) (*BoundStmt, error) {
	c, err := s.tmpl.Bind(args...)
	if err != nil {
		return nil, err
	}
	return &BoundStmt{stmt: s, c: c}, nil
}

// Query binds args and executes the statement approximately — the
// prepared equivalent of Engine.Query on the literal SQL; for a fixed
// seed the results are identical.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Result, error) {
	b, err := s.Bind(args...)
	if err != nil {
		return nil, err
	}
	return b.Query(ctx)
}

// QueryExact binds args and evaluates the statement exactly with a
// partitioned full scan, ignoring the tail stopping clause.
func (s *Stmt) QueryExact(ctx context.Context, args ...any) (*ExactResult, error) {
	b, err := s.Bind(args...)
	if err != nil {
		return nil, err
	}
	return b.QueryExact(ctx)
}

// Stream binds args and starts the statement as a pull-based cursor
// over per-round interval snapshots — see Rows for the cursor
// contract.
func (s *Stmt) Stream(ctx context.Context, args ...any) (*Rows, error) {
	b, err := s.Bind(args...)
	if err != nil {
		return nil, err
	}
	return b.Stream(ctx)
}

// BoundStmt is a prepared statement with its parameters bound: a fully
// planned, immutable query ready to run (possibly several times —
// each run rebinds nothing).
type BoundStmt struct {
	stmt *Stmt
	c    sql.Compiled
}

// Explain renders the bound plan: the same full rendering as
// Stmt.Explain, with every parameter slot replaced by its bound value.
// For statements with JOIN clauses it additionally shows the bind-time
// join compilation against the engine's current registry — each
// fact-side IN atom with its key-set size (an empty set renders as the
// provably empty view it compiles to) — and, when the FROM table is
// registered, the static block-pruning prospect of the WHERE clause
// (zone-map range prunability and the combined block mask).
func (b *BoundStmt) Explain() string {
	return b.c.Explain() + b.stmt.eng.explainJoins(b.c) + b.stmt.eng.explainScanPrune(b.c)
}

// Query executes the bound statement approximately. Options given here
// apply after (and override) the Prepare-time options.
func (b *BoundStmt) Query(ctx context.Context, opts ...Option) (*Result, error) {
	return b.stmt.eng.run(ctx, b.c, b.runOpts(opts))
}

// QueryExact evaluates the bound statement exactly, ignoring the tail
// stopping clause.
func (b *BoundStmt) QueryExact(ctx context.Context, opts ...Option) (*ExactResult, error) {
	return b.stmt.eng.runExact(ctx, b.c, b.runOpts(opts))
}

// Stream starts the bound statement as a pull-based cursor.
func (b *BoundStmt) Stream(ctx context.Context, opts ...Option) (*Rows, error) {
	return b.stmt.eng.streamRun(ctx, b.c, b.runOpts(opts))
}

// runOpts concatenates Prepare-time and run-time options without
// aliasing either slice.
func (b *BoundStmt) runOpts(opts []Option) []Option {
	if len(opts) == 0 {
		return b.stmt.opts
	}
	merged := make([]Option, 0, len(b.stmt.opts)+len(opts))
	merged = append(merged, b.stmt.opts...)
	return append(merged, opts...)
}
