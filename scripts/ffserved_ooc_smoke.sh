#!/usr/bin/env bash
# Out-of-core end-to-end smoke test: serve a table whose decoded size
# exceeds GOMEMLIMIT through a small buffer pool, drive a concurrent
# query storm, and require correct answers, moving pool counters, and a
# clean drain. This is the "table bigger than memory" claim exercised
# for real: 2M rows decode to ~56 MB while the daemon runs under
# GOMEMLIMIT=40MiB with an 8 MB pool.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build =="
go build -o "$workdir/ffgen" ./cmd/ffgen
go build -o "$workdir/ffserved" ./cmd/ffserved

echo "== generate (2M rows, ~56 MB decoded) =="
"$workdir/ffgen" -rows 2000000 -summary=false -table "$workdir/flights.ff"
ls -l "$workdir/flights.ff"

echo "== offline integrity check =="
"$workdir/ffgen" -verify "$workdir/flights.ff"

echo "== start daemon out-of-core under GOMEMLIMIT =="
addr="127.0.0.1:18081"
GOMEMLIMIT=40MiB "$workdir/ffserved" -addr "$addr" \
    -table "flights=$workdir/flights.ff" -pool-bytes $((8 * 1024 * 1024)) \
    -token "smoke=s3cret,delta=0.01,conc=8" &
server_pid=$!

for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "ffserved died during startup" >&2; exit 1
    fi
    sleep 0.2
done
curl -sf "http://$addr/healthz" | grep -q '"ok"'

echo "== query storm (3 waves x 8 concurrent) =="
queries=(
    'SELECT AVG(DepDelay) FROM flights GROUP BY Airline WITHIN 5%'
    'SELECT AVG(DepDelay) FROM flights WHERE Origin = '"'"'ORD'"'"' WITHIN 5%'
    'SELECT COUNT(*) FROM flights WHERE DepTime > 1500 WITHIN 10%'
    'SELECT SUM(DepDelay) FROM flights GROUP BY DayOfWeek WITHIN 10%'
    'SELECT AVG(DepDelay) FROM flights GROUP BY Origin WITHIN 10%'
    'SELECT AVG(DepTime) FROM flights WHERE DayOfWeek = '"'"'Sat'"'"' WITHIN 10%'
    'SELECT COUNT(*) FROM flights WHERE DepDelay > 60 WITHIN 10%'
    'SELECT AVG(DepDelay) FROM flights WITHIN 2%'
)
for wave in 1 2 3; do
    pids=()
    for i in "${!queries[@]}"; do
        out="$workdir/storm_${wave}_${i}.json"
        curl -sf "http://$addr/v1/query" -H 'Authorization: Bearer s3cret' \
            -d "{\"sql\": \"${queries[$i]}\"}" -o "$out" &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do wait "$pid"; done
done
for f in "$workdir"/storm_*.json; do
    grep -q '"groups"' "$f" || { echo "no result in $f:" >&2; cat "$f" >&2; exit 1; }
done
echo "storm: $(ls "$workdir"/storm_*.json | wc -l) answers, all with groups"

echo "== pool counters visible and moving =="
curl -sf "http://$addr/v1/stats" -H 'Authorization: Bearer s3cret' | tee "$workdir/stats.out"
echo
bp=$(grep -o '"buffer_pool":{[^}]*}' "$workdir/stats.out")
[ -n "$bp" ] || { echo "no buffer_pool object in /v1/stats" >&2; exit 1; }
misses=$(echo "$bp" | grep -o '"misses":[0-9]*' | cut -d: -f2)
evictions=$(echo "$bp" | grep -o '"evictions":[0-9]*' | cut -d: -f2)
budget=$(echo "$bp" | grep -o '"budget_bytes":[0-9]*' | cut -d: -f2)
[ "$budget" = "$((8 * 1024 * 1024))" ] || { echo "budget_bytes=$budget, want 8 MiB" >&2; exit 1; }
[ "${misses:-0}" -gt 0 ] || { echo "pool misses=0: nothing was paged" >&2; exit 1; }
[ "${evictions:-0}" -gt 0 ] || { echo "pool evictions=0: budget never bound" >&2; exit 1; }
echo "pool: misses=$misses evictions=$evictions under budget=$budget"

echo "== SIGTERM drains cleanly =="
kill -TERM "$server_pid"
for i in $(seq 1 50); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "ffserved still running after SIGTERM" >&2; exit 1
fi
wait "$server_pid"

echo "ffserved out-of-core smoke: OK"
