#!/usr/bin/env bash
# End-to-end smoke test for the ffserved daemon: generate a table,
# serve it, query it one-shot and streamed through ffquery's client
# mode, hit the ops endpoints, then SIGTERM and require a clean exit.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build =="
go build -o "$workdir/ffgen" ./cmd/ffgen
go build -o "$workdir/ffserved" ./cmd/ffserved
go build -o "$workdir/ffquery" ./cmd/ffquery

echo "== generate =="
"$workdir/ffgen" -rows 200000 -summary=false -table "$workdir/flights.ff"

echo "== start daemon =="
addr="127.0.0.1:18080"
"$workdir/ffserved" -addr "$addr" -table "flights=$workdir/flights.ff" \
    -token "smoke=s3cret,delta=0.01,budget=0.5,conc=4" \
    -usage-log "$workdir/usage.jsonl" &
server_pid=$!

for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "ffserved died during startup" >&2; exit 1
    fi
    sleep 0.2
done
curl -sf "http://$addr/healthz" | grep -q '"ok"'

echo "== one-shot via ffquery -url =="
"$workdir/ffquery" -url "http://$addr" -token s3cret -exact=false \
    "SELECT AVG(DepDelay) FROM flights GROUP BY DayOfWeek WITHIN 5%" | tee "$workdir/oneshot.out"
grep -q "plan:" "$workdir/oneshot.out"

echo "== streamed via ffquery -url -stream =="
"$workdir/ffquery" -url "http://$addr" -token s3cret -stream -exact=false \
    "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' GROUP BY Airline WITHIN 10%" | tee "$workdir/stream.out"
grep -q "round" "$workdir/stream.out"

echo "== parameterized query over the wire =="
curl -sf "http://$addr/v1/query" -H 'Authorization: Bearer s3cret' \
    -d '{"sql": "SELECT COUNT(*) FROM flights WHERE Origin = ? WITHIN 20%", "args": ["ORD"]}' \
    | tee "$workdir/params.out"
grep -q '"delta_charged":0.01' "$workdir/params.out"

echo
echo "== auth is enforced =="
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/query" \
    -d '{"sql": "SELECT COUNT(*) FROM flights WITHIN 20%"}')
[ "$code" = "401" ] || { echo "expected 401 without token, got $code" >&2; exit 1; }

echo "== stats =="
curl -sf "http://$addr/v1/stats" -H 'Authorization: Bearer s3cret' | tee "$workdir/stats.out"
grep -q '"smoke"' "$workdir/stats.out"

echo
echo "== SIGTERM drains cleanly =="
kill -TERM "$server_pid"
for i in $(seq 1 50); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "ffserved still running after SIGTERM" >&2; exit 1
fi
wait "$server_pid"   # exits 0 on a clean drain

echo "== usage log flushed =="
[ -s "$workdir/usage.jsonl" ]
grep -q '"tenant":"smoke"' "$workdir/usage.jsonl"
wc -l "$workdir/usage.jsonl"

echo "ffserved smoke: OK"
