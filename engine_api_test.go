package fastframe

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func testEngine(t testing.TB) *Engine {
	t.Helper()
	eng := NewEngine(WithQueryDelta(1e-9))
	if err := eng.Register("flights", smallFlights(t)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// fastQueryOpts mirrors fastOpts() for the functional-options path.
func fastQueryOpts() []Option {
	return []Option{WithDelta(1e-9), WithRoundRows(2000)}
}

// TestEngineQueryMatchesBuilder runs the acceptance shapes through the
// SQL front-end and the query builder with identical settings; the
// executions are deterministic, so the results must match exactly.
func TestEngineQueryMatchesBuilder(t *testing.T) {
	tab := smallFlights(t)
	eng := NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		sql     string
		builder QueryBuilder
	}{
		{
			name:    "ungrouped AVG, relative-error stop",
			sql:     "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 20%",
			builder: Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.2),
		},
		{
			name:    "grouped AVG, HAVING-threshold stop",
			sql:     "SELECT AVG(DepDelay) FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 9.3",
			builder: Avg("DepDelay").GroupBy("Airline").StopWhenThresholdDecided(9.3),
		},
		{
			name:    "grouped SUM, top-k stop",
			sql:     "SELECT SUM(DepDelay) FROM flights GROUP BY Origin ORDER BY SUM(DepDelay) DESC LIMIT 3",
			builder: Sum("DepDelay").GroupBy("Origin").StopWhenTopKSeparated(3),
		},
		{
			name:    "COUNT(*) with categorical and numeric predicate",
			sql:     "SELECT COUNT(*) FROM flights WHERE Origin = 'ORD' AND DepTime > 1300 WITHIN 20%",
			builder: CountRows().Where("Origin", "ORD").WhereGreater("DepTime", 1300).StopAtRelError(0.2),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := eng.Query(context.Background(), c.sql, fastQueryOpts()...)
			if err != nil {
				t.Fatalf("Engine.Query: %v", err)
			}
			want, err := tab.Query(context.Background(), c.builder, fastQueryOpts()...)
			if err != nil {
				t.Fatalf("Table.Query: %v", err)
			}
			if got.RowsCovered != want.RowsCovered || got.Rounds != want.Rounds ||
				got.Stopped != want.Stopped || got.Exhausted != want.Exhausted {
				t.Errorf("cost mismatch: sql {rows %d rounds %d stopped %v exhausted %v}, builder {rows %d rounds %d stopped %v exhausted %v}",
					got.RowsCovered, got.Rounds, got.Stopped, got.Exhausted,
					want.RowsCovered, want.Rounds, want.Stopped, want.Exhausted)
			}
			if len(got.Groups) != len(want.Groups) {
				t.Fatalf("groups: sql %d, builder %d", len(got.Groups), len(want.Groups))
			}
			for i := range got.Groups {
				g, w := got.Groups[i], want.Groups[i]
				if g.Key != w.Key || g.Samples != w.Samples ||
					g.Avg != w.Avg || g.Count != w.Count || g.Sum != w.Sum {
					t.Errorf("group %d differs:\n  sql:     %+v\n  builder: %+v", i, g, w)
				}
			}
		})
	}
}

// TestEngineQueryAgainstExact sanity-checks the SQL path against the
// exact evaluator (interval coverage, not just builder agreement).
func TestEngineQueryAgainstExact(t *testing.T) {
	eng := testEngine(t)
	const q = "SELECT AVG(DepDelay) FROM flights GROUP BY DayOfWeek WITHIN 15%"
	res, err := eng.Query(context.Background(), q, WithRoundRows(2000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped && !res.Exhausted {
		t.Error("query neither stopped nor exhausted")
	}
	ex, err := eng.QueryExact(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Groups) == 0 {
		t.Fatal("exact result empty")
	}
	if res.Agg != AggAvg || ex.Agg != AggAvg {
		t.Errorf("Agg = %v / %v, want AVG", res.Agg, ex.Agg)
	}
	for _, eg := range ex.Groups {
		g := res.Group(eg.Key)
		if g == nil {
			t.Errorf("group %q missing from approximate result", eg.Key)
			continue
		}
		if !g.Avg.Contains(eg.Avg) {
			t.Errorf("group %q: exact %v outside %v", eg.Key, eg.Avg, g.Avg)
		}
	}
}

// TestEngineCancellation proves Engine.Query returns promptly on a
// context deadline, with Aborted set and still-valid intervals.
func TestEngineCancellation(t *testing.T) {
	eng := testEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	// The progress callback simulates a slow online-aggregation
	// consumer: it holds each round open until the deadline has passed,
	// so the scan cannot finish before cancellation is observed.
	start := time.Now()
	res, err := eng.Query(ctx,
		"SELECT AVG(DepDelay) FROM flights EXACT",
		WithRoundRows(1000),
		WithProgress(func(p Progress) bool {
			<-ctx.Done()
			return true
		}))
	if err != nil {
		t.Fatalf("cancelled query returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("query took %v after a 30ms deadline", elapsed)
	}
	if !res.Aborted {
		t.Error("Result.Aborted not set after deadline")
	}
	if res.Exhausted {
		t.Error("scan claims exhaustion despite deadline")
	}
	if res.Rounds == 0 {
		t.Error("no rounds closed before abort")
	}

	// The partial interval is still a valid CI around the exact mean.
	ex, err := eng.QueryExact(context.Background(), "SELECT AVG(DepDelay) FROM flights")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || len(ex.Groups) != 1 {
		t.Fatalf("groups: approx %d, exact %d", len(res.Groups), len(ex.Groups))
	}
	g := res.Groups[0]
	if !g.Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("partial interval %v does not cover exact mean %v", g.Avg, ex.Groups[0].Avg)
	}
	if g.Avg.Width() <= 0 || math.IsInf(g.Avg.Width(), 0) {
		t.Errorf("degenerate partial interval %v", g.Avg)
	}

	// A context that is already done before any work starts surfaces
	// the context error instead of a result.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := eng.Query(done, "SELECT AVG(DepDelay) FROM flights"); err == nil {
		t.Error("pre-cancelled context accepted")
	}
	// Exact scans honor the context too; there is no valid partial
	// exact answer, so cancellation surfaces as the context error.
	if _, err := eng.QueryExact(done, "SELECT AVG(DepDelay) FROM flights"); err == nil {
		t.Error("pre-cancelled QueryExact accepted")
	}
}

func TestEngineSessionBudget(t *testing.T) {
	tab := smallFlights(t)
	eng := NewEngine(WithSessionBudget(1e-12, 4))
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	total, perQuery := eng.SessionBudget()
	if total != 1e-12 || perQuery != 2.5e-13 {
		t.Fatalf("budget = (%v, %v)", total, perQuery)
	}

	const q = "SELECT AVG(DepDelay) FROM flights WITHIN 25%"
	for i := 0; i < 2; i++ {
		if _, err := eng.Query(context.Background(), q, WithRoundRows(2000)); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.QueriesRun(); n != 2 {
		t.Errorf("QueriesRun = %d", n)
	}
	if spent := eng.SessionError(); math.Abs(spent-5e-13) > 1e-25 {
		t.Errorf("SessionError = %v, want 5e-13", spent)
	}

	// A per-query override is charged at its own δ.
	if _, err := eng.Query(context.Background(), q, WithRoundRows(2000), WithDelta(1e-9)); err != nil {
		t.Fatal(err)
	}
	if spent := eng.SessionError(); math.Abs(spent-(5e-13+1e-9)) > 1e-20 {
		t.Errorf("SessionError after override = %v", spent)
	}

	// Failed queries consume no budget.
	if _, err := eng.Query(context.Background(), "SELECT AVG(NoSuchColumn) FROM flights"); err == nil {
		t.Error("bad column accepted")
	}
	if n := eng.QueriesRun(); n != 3 {
		t.Errorf("QueriesRun counts failed query: %d", n)
	}
}

func TestEngineErrors(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.Query(context.Background(), "SELECT AVG(x) FROM nowhere"); err == nil ||
		!strings.Contains(err.Error(), "no tables registered") {
		t.Errorf("empty engine error = %v", err)
	}
	eng = testEngine(t)
	_, err := eng.Query(context.Background(), "SELECT AVG(x) FROM nowhere")
	if err == nil || !strings.Contains(err.Error(), `unknown table "nowhere"`) ||
		!strings.Contains(err.Error(), "flights") {
		t.Errorf("unknown-table error = %v", err)
	}
	if _, err := eng.Query(context.Background(), "SELEKT nonsense"); err == nil ||
		!strings.Contains(err.Error(), "sql:") {
		t.Errorf("parse error = %v", err)
	}
	if err := eng.Register("", nil); err == nil {
		t.Error("empty registration accepted")
	}
	if err := eng.Register("x", nil); err == nil {
		t.Error("nil table accepted")
	}
	if got := eng.Tables(); len(got) != 1 || got[0] != "flights" {
		t.Errorf("Tables = %v", got)
	}
}

func TestEngineExplain(t *testing.T) {
	eng := NewEngine()
	plan, err := eng.Explain("SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%")
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"AVG(DepDelay)", `Origin = "ORD"`, "rel-width", "FROM flights"} {
		if !strings.Contains(plan, sub) {
			t.Errorf("Explain = %q, missing %q", plan, sub)
		}
	}
	if _, err := eng.Explain("SELECT"); err == nil {
		t.Error("Explain accepted bad SQL")
	}
}

// TestEngineExplainScanPrune checks Explain renders the zone-map
// prunability of float-range predicates against the registered table:
// one PRUNE line per range atom plus the combined-mask summary, with
// the possible-block count matching what a scan would actually fetch.
func TestEngineExplainScanPrune(t *testing.T) {
	eng := testEngine(t)
	plan, err := eng.Explain("SELECT COUNT(*) FROM flights WHERE DepDelay >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "PRUNE range DepDelay >= 100") ||
		!strings.Contains(plan, "blocks possible") ||
		!strings.Contains(plan, "PRUNE scan:") {
		t.Fatalf("Explain missing zone-map prune rendering:\n%s", plan)
	}
	// The rendered possible-block count is the scan's actual fetch
	// ceiling: run the query to exhaustion and compare.
	res, err := eng.Query(context.Background(), "SELECT COUNT(*) FROM flights WHERE DepDelay >= 100")
	if err != nil {
		t.Fatal(err)
	}
	var possible, total int
	if _, err := fmt.Sscanf(plan[strings.Index(plan, "PRUNE scan:"):], "PRUNE scan: %d of %d blocks possible", &possible, &total); err != nil {
		t.Fatalf("cannot parse PRUNE scan line in:\n%s", plan)
	}
	if res.BlocksFetched > possible {
		t.Errorf("scan fetched %d blocks, plan promised at most %d", res.BlocksFetched, possible)
	}
	if possible >= total {
		t.Errorf("tail predicate pruned nothing: %d of %d", possible, total)
	}

	// A predicate over a value absent from the dictionary renders the
	// provably empty view.
	plan, err = eng.Explain("SELECT COUNT(*) FROM flights WHERE Origin = 'NOWHERE'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "provably empty view") {
		t.Errorf("empty view not rendered:\n%s", plan)
	}
}

// TestGroupLookup exercises the binary-search Group lookups on both
// result types, including misses before, between, and after the keys.
func TestGroupLookup(t *testing.T) {
	eng := testEngine(t)
	const q = "SELECT AVG(DepDelay) FROM flights GROUP BY Airline WITHIN 25%"
	res, err := eng.Query(context.Background(), q, WithRoundRows(2000))
	if err != nil {
		t.Fatal(err)
	}
	ex, err := eng.QueryExact(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) < 2 {
		t.Fatalf("want several groups, got %d", len(res.Groups))
	}
	for i := range res.Groups {
		key := res.Groups[i].Key
		if g := res.Group(key); g == nil || g.Key != key {
			t.Errorf("Result.Group(%q) = %v", key, g)
		}
		if g := ex.Group(key); g == nil || g.Key != key {
			t.Errorf("ExactResult.Group(%q) = %v", key, g)
		}
	}
	for _, miss := range []string{"", "AA0", "zzz", res.Groups[0].Key + "\x00"} {
		if g := res.Group(miss); g != nil {
			t.Errorf("Result.Group(%q) = %+v, want nil", miss, g)
		}
		if g := ex.Group(miss); g != nil {
			t.Errorf("ExactResult.Group(%q) = %+v, want nil", miss, g)
		}
	}
}
