package fastframe

import (
	"errors"

	"fastframe/internal/ci"
	"fastframe/internal/core"
)

// MeanEstimator is the standalone streaming form of the paper's CI
// machinery, usable without the column store: feed it values sampled
// WITHOUT replacement from a finite dataset known to lie in [A, B], and
// read an anytime-valid confidence interval for the dataset mean at any
// moment. Intervals remain simultaneously valid across all reads with
// total error probability Delta (the optional-stopping construction of
// Algorithm 5), so it is safe to stop as soon as the interval looks good.
//
// The zero value is not usable; construct with NewMeanEstimator.
type MeanEstimator struct {
	opt *core.OptStop
}

// EstimatorConfig configures a MeanEstimator.
type EstimatorConfig struct {
	// A, B bound every dataset value (required: A < B).
	A, B float64
	// N is the dataset size, or an upper bound on it; 0 means unknown
	// (the with-replacement-safe bound is used).
	N int
	// Delta is the total error probability across the whole stream
	// (default 1e−15).
	Delta float64
	// Bounder selects the CI technique (default BernsteinRT).
	Bounder Bounder
	// BatchRows is the number of observations between interval
	// recomputations (default 40000). Smaller batches react faster and
	// spend the δ-budget faster.
	BatchRows int
}

// NewMeanEstimator returns an estimator for the given configuration.
func NewMeanEstimator(cfg EstimatorConfig) (*MeanEstimator, error) {
	if !(cfg.A < cfg.B) {
		return nil, errors.New("fastframe: estimator requires A < B")
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 1e-15
	}
	b, err := cfg.Bounder.impl()
	if err != nil {
		return nil, err
	}
	opt := core.NewOptStop(b, ci.Params{A: cfg.A, B: cfg.B, N: cfg.N, Delta: cfg.Delta}, cfg.BatchRows)
	return &MeanEstimator{opt: opt}, nil
}

// Observe incorporates one sampled value.
func (m *MeanEstimator) Observe(v float64) { m.opt.Observe(v) }

// Interval returns the current anytime-valid confidence interval for
// the dataset mean. It forces a bound recomputation over the partial
// batch, so calling it very frequently spends the δ-budget faster than
// necessary (each call closes a round).
func (m *MeanEstimator) Interval() Interval {
	m.opt.CloseRound()
	return fromCI(m.opt.Interval())
}

// Samples returns the number of observations so far.
func (m *MeanEstimator) Samples() int { return m.opt.Samples() }
