package fastframe

import (
	"context"
	"iter"
	"sync"

	"fastframe/internal/query"
)

// Rows is a pull-based cursor over the per-round snapshots of one
// running approximate query — the interactive face of the paper's
// online-aggregation loop. Each interval-recomputation round produces
// one Progress snapshot whose confidence intervals tighten round by
// round until the stopping rule fires:
//
//	rows, _ := stmt.Stream(ctx, "ORD")
//	defer rows.Close()
//	for rows.Next() {
//	    display(rows.Snapshot()) // intervals tighten every round
//	}
//	res, err := rows.Final() // == the one-shot Query result
//
// The scan runs on its own goroutine but is fully consumer-paced: the
// snapshot hand-off is unbuffered, so the scan blocks at each round
// barrier until the consumer pulls (or closes) — a slow display never
// piles up stale snapshots, and a closed cursor never scans ahead.
//
// Close aborts the scan at the next round boundary; the snapshots
// already delivered — and the partial Final result, which has Aborted
// set — keep their (1−δ) guarantee, by the optional-stopping
// construction. The final round's snapshot (the one that satisfied the
// stopping rule) is delivered like any other, so draining the cursor
// observes the complete convergence trajectory.
//
// A Rows is a single-consumer cursor: Next/Snapshot/Final must not be
// called concurrently with each other, but Close may be called from
// any goroutine (e.g. to abort a blocked Next) and is idempotent.
type Rows struct {
	snaps chan Progress
	stop  chan struct{}
	done  chan struct{}

	closeOnce sync.Once
	cur       Progress

	// res and err are written by the producer goroutine before done is
	// closed, and only read after <-done.
	res *Result
	err error
}

// Stream starts an approximate query as a pull-based cursor. It is
// Query's streaming counterpart: draining the cursor and taking Final
// yields exactly the one-shot result. Execution errors (an unknown
// column, say) surface on the first Next/Final/Err call, not here.
func (t *Table) Stream(ctx context.Context, q QueryBuilder, opts ...Option) (*Rows, error) {
	var s runSettings
	s.apply(opts)
	return t.stream(ctx, q.build(), s, nil), nil
}

// stream is the shared producer beneath Table.Stream, Engine.Stream
// and Stmt.Stream. onDone, if set, observes the terminal result exactly
// once (the engine charges its session budget there).
func (t *Table) stream(ctx context.Context, q query.Query, s runSettings, onDone func(*Result, error)) *Rows {
	r := &Rows{
		snaps: make(chan Progress), // unbuffered: consumer-paced backpressure
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	user := s.onProgress
	s.onProgress = func(p Progress) bool {
		if user != nil && !user(p) {
			return false // a WithProgress veto aborts the stream too
		}
		select {
		case r.snaps <- p:
			return true
		case <-r.stop:
			return false // Close: abort at this round boundary
		case <-ctx.Done():
			return false // cancelled consumer is gone; don't block the scan
		}
	}
	go func() {
		res, err := t.runQuery(ctx, q, s)
		r.res, r.err = res, err
		if onDone != nil {
			onDone(res, err)
		}
		close(r.done)
	}()
	return r
}

// Next advances to the next round snapshot, blocking until the scan
// completes a round. It returns false once the scan has finished —
// stopping rule satisfied, scramble exhausted, aborted, or failed
// (check Err, or take Final) — or after Close.
func (r *Rows) Next() bool {
	select {
	case <-r.stop:
		return false
	default:
	}
	select {
	case p := <-r.snaps:
		r.cur = p
		return true
	case <-r.done:
		return false
	}
}

// Snapshot returns the snapshot Next advanced to. It is meaningful
// only after a Next call that returned true.
func (r *Rows) Snapshot() Progress { return r.cur }

// Final drains any remaining rounds, waits for the scan to finish, and
// returns the terminal result: exactly what the one-shot Query on the
// same statement would have returned or, after Close, the partial
// result with Aborted set (its intervals remain valid CIs at the point
// the scan stopped).
func (r *Rows) Final() (*Result, error) {
	for r.Next() {
	}
	<-r.done
	return r.res, r.err
}

// Err returns the scan's terminal error, or nil while it is still
// running or when it completed cleanly. An abort via Close or context
// cancellation is not an error: it yields a valid partial result.
func (r *Rows) Err() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}

// Close aborts the scan at the next round boundary and blocks until
// the producer has shut down. It is idempotent and safe to call from
// any goroutine. After Close, Final returns the partial result with
// Aborted set. Close returns the scan's terminal error, like Err.
func (r *Rows) Close() error {
	r.closeOnce.Do(func() { close(r.stop) })
	<-r.done
	return r.err
}

// Rounds adapts the cursor to a Go range-over-func iterator:
//
//	for p := range rows.Rounds() {
//	    fmt.Println(p.Round, p.Groups)
//	}
//
// The loop ends when the scan finishes; breaking out early leaves the
// cursor open (the scan stays blocked at its round barrier), so pair
// Rounds with defer rows.Close() like any other cursor use.
func (r *Rows) Rounds() iter.Seq[Progress] {
	return func(yield func(Progress) bool) {
		for r.Next() {
			if !yield(r.cur) {
				return
			}
		}
	}
}
