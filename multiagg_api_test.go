package fastframe

import (
	"context"
	"math"
	"strings"
	"testing"
)

const multiAggSQL = "SELECT AVG(DepDelay), MEDIAN(DepDelay), VAR(DepDelay), COUNT(DISTINCT Origin) FROM flights GROUP BY Airline"

// TestMultiAggEndToEnd runs the acceptance query — four statistics on
// one scan — through the SQL engine and checks the per-aggregate
// answers against the exact evaluator.
func TestMultiAggEndToEnd(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	res, err := eng.Query(ctx, multiAggSQL, fastQueryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	wantAggs := []Agg{AggAvg, AggMedian, AggVar, AggCountDistinct}
	if len(res.Aggs) != len(wantAggs) {
		t.Fatalf("Aggs = %v", res.Aggs)
	}
	for i, a := range wantAggs {
		if res.Aggs[i] != a {
			t.Fatalf("Aggs[%d] = %v, want %v", i, res.Aggs[i], a)
		}
	}
	if !res.Exhausted {
		t.Fatalf("no tail clause should exhaust the scramble: %+v", res)
	}

	ex, err := eng.QueryExact(ctx, multiAggSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Aggs) != len(wantAggs) {
		t.Fatalf("exact Aggs = %v", ex.Aggs)
	}
	if len(res.Groups) == 0 || len(res.Groups) != len(ex.Groups) {
		t.Fatalf("group counts: %d approx, %d exact", len(res.Groups), len(ex.Groups))
	}
	for i, g := range res.Groups {
		e := ex.Groups[i]
		if g.Key != e.Key {
			t.Fatalf("group %d key %q vs exact %q", i, g.Key, e.Key)
		}
		if len(g.Answers) != len(wantAggs) || len(e.Stats) != len(wantAggs) {
			t.Fatalf("group %q: %d answers, %d exact stats", g.Key, len(g.Answers), len(e.Stats))
		}
		if !g.Exact {
			t.Errorf("group %q not exact after exhaustion", g.Key)
		}
		for k := range wantAggs {
			iv, want := g.Answers[k], e.Stats[k]
			if !(iv.Lo <= want && want <= iv.Hi) {
				t.Errorf("group %q %s: interval [%v,%v] misses exact %v",
					g.Key, wantAggs[k], iv.Lo, iv.Hi, want)
			}
			// Exhausted views collapse to points (up to float summation
			// order for the moment-based statistics).
			if w := iv.Width(); w > 1e-6*math.Max(1, math.Abs(want)) {
				t.Errorf("group %q %s: width %v after exhaustion", g.Key, wantAggs[k], w)
			}
		}
	}
}

// TestMultiAggStreamMatchesOneShot: the streaming cursor's Final on a
// multi-aggregate statement equals the one-shot result, and each
// snapshot carries the full aggregate list.
func TestMultiAggStreamMatchesOneShot(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	stmt, err := eng.Prepare(multiAggSQL, fastQueryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	snaps := 0
	for p := range rows.Rounds() {
		snaps++
		if len(p.Aggs) != 4 {
			t.Fatalf("snapshot Aggs = %v", p.Aggs)
		}
		for _, g := range p.Groups {
			if len(g.Answers) != 4 {
				t.Fatalf("snapshot group %q has %d answers", g.Key, len(g.Answers))
			}
		}
	}
	final, err := rows.Final()
	if err != nil {
		t.Fatal(err)
	}
	if snaps == 0 {
		t.Error("no per-round snapshots before Final")
	}
	want, err := eng.Query(ctx, multiAggSQL, fastQueryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswer(final, want) {
		t.Error("streamed Final differs from one-shot result")
	}
}

// TestPercentileParamBinding: PERCENTILE(expr, ?) binds through
// prepared statements; targets outside (0,1), NaN, and ±Inf are
// rejected at Bind with the slot's position.
func TestPercentileParamBinding(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	stmt, err := eng.Prepare("SELECT PERCENTILE(DepDelay, ?) FROM flights", fastQueryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query(ctx, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggs) != 1 || res.Aggs[0] != AggPercentile {
		t.Fatalf("Aggs = %v", res.Aggs)
	}
	lit, err := eng.Query(ctx, "SELECT PERCENTILE(DepDelay, 0.99) FROM flights", fastQueryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswer(res, lit) {
		t.Error("bound PERCENTILE differs from literal")
	}

	for _, bad := range []any{0.0, 1.0, 1.5, -0.25, math.NaN(), math.Inf(1)} {
		if _, err := stmt.Query(ctx, bad); err == nil {
			t.Errorf("PERCENTILE target %v accepted", bad)
		} else if !strings.Contains(err.Error(), "parameter 1") {
			t.Errorf("PERCENTILE target %v: error %v lacks slot position", bad, err)
		}
	}
}
