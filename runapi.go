package fastframe

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"time"

	"fastframe/internal/ci"
	"fastframe/internal/core"
	"fastframe/internal/exact"
	"fastframe/internal/exec"
	"fastframe/internal/query"
)

// Bounder selects the confidence-interval technique (§5.2 of the
// paper). BernsteinRT is the paper's headline configuration and the
// default.
type Bounder int

const (
	// BernsteinRT is the empirical Bernstein–Serfling bounder wrapped
	// with RangeTrim: neither PMA nor PHOS. The default.
	BernsteinRT Bounder = iota
	// Bernstein is the empirical Bernstein–Serfling bounder alone
	// (no PMA, but PHOS).
	Bernstein
	// HoeffdingRT is the Hoeffding–Serfling bounder with RangeTrim
	// (PMA, no PHOS).
	HoeffdingRT
	// Hoeffding is the Hoeffding–Serfling bounder alone (PMA and PHOS);
	// the traditional conservative AQP baseline.
	Hoeffding
	// Anderson is the Anderson/DKW bounder (PMA, no PHOS; O(m) memory).
	Anderson
)

// String names the bounder as in the paper's tables.
func (b Bounder) String() string {
	switch b {
	case BernsteinRT:
		return "Bernstein+RT"
	case Bernstein:
		return "Bernstein"
	case HoeffdingRT:
		return "Hoeffding+RT"
	case Hoeffding:
		return "Hoeffding"
	case Anderson:
		return "Anderson"
	default:
		return fmt.Sprintf("Bounder(%d)", int(b))
	}
}

func (b Bounder) impl() (ci.Bounder, error) {
	switch b {
	case BernsteinRT:
		return core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}, nil
	case Bernstein:
		return ci.EmpiricalBernsteinSerfling{}, nil
	case HoeffdingRT:
		return core.RangeTrim{Inner: ci.HoeffdingSerfling{}}, nil
	case Hoeffding:
		return ci.HoeffdingSerfling{}, nil
	case Anderson:
		return ci.AndersonDKW{}, nil
	default:
		return nil, fmt.Errorf("fastframe: unknown bounder %d", int(b))
	}
}

// Strategy selects the sampling strategy (§5.2).
type Strategy int

const (
	// ActivePeekStrategy skips blocks without active-group tuples using
	// the asynchronous batched bitmap lookahead. The default.
	ActivePeekStrategy Strategy = iota
	// ActiveSyncStrategy performs the same skipping with synchronous
	// per-block bitmap probes.
	ActiveSyncStrategy
	// ScanStrategy reads blocks sequentially, using bitmaps only to
	// prune blocks that cannot match a categorical predicate.
	ScanStrategy
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case ActivePeekStrategy:
		return "ActivePeek"
	case ActiveSyncStrategy:
		return "ActiveSync"
	case ScanStrategy:
		return "Scan"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

func (s Strategy) impl() exec.Strategy {
	switch s {
	case ActiveSyncStrategy:
		return exec.ActiveSync
	case ScanStrategy:
		return exec.Scan
	default:
		return exec.ActivePeek
	}
}

// ExecOptions configures one query execution. The zero value selects
// the paper's defaults: Bernstein+RT, ActivePeek, δ = 1e−15, bound
// recomputation every 40000 rows, and a seed-0 starting position.
//
// Deprecated: use the functional options (WithBounder, WithDelta,
// WithRoundRows, WithProgress, ...) with Table.Query or Engine.Query.
// ExecOptions remains as a compatibility shim for existing callers.
type ExecOptions struct {
	// Bounder is the CI technique (default BernsteinRT).
	Bounder Bounder
	// Strategy is the sampling strategy (default ActivePeek).
	Strategy Strategy
	// Delta is the total error probability across all of the query's
	// aggregate views (default 1e−15).
	Delta float64
	// RoundRows is the number of covered rows between interval
	// recomputations (default 40000).
	RoundRows int
	// Seed randomizes the scan's starting position within the scramble.
	Seed uint64
	// MaxRows, if positive, aborts after covering this many rows.
	MaxRows int
	// ExactCountBounds uses the exact hypergeometric tail bound for
	// unknown view sizes instead of the default Hoeffding–Serfling form.
	ExactCountBounds bool
	// OnProgress, if set, receives a snapshot after every interval
	// recomputation — the online-aggregation interface: display the
	// tightening intervals and return false to stop when satisfied
	// (Result.Aborted is then set; the reported intervals remain valid).
	OnProgress func(Progress) bool
}

// Progress is a mid-query snapshot delivered to WithProgress callbacks
// and Rows cursors (and, for compatibility, ExecOptions.OnProgress).
type Progress struct {
	// Agg is the first (for single-aggregate queries, the only)
	// aggregate the query computes; each group's Answer(Agg) interval
	// carries the query's full guarantee.
	Agg Agg
	// Aggs lists every SELECT-list aggregate in order; group Answers
	// align with it. Single-aggregate queries get a one-element list.
	Aggs []Agg
	// Round counts interval recomputations so far.
	Round int
	// RowsCovered and BlocksFetched are the cost so far.
	RowsCovered   int
	BlocksFetched int
	// ActiveGroups is the number of groups still driving the scan.
	ActiveGroups int
	// Degraded and QuarantinedBlocks report blocks skipped past storage
	// faults under WithDegradedReads (see Result).
	Degraded          bool
	QuarantinedBlocks int
	// Groups holds the current per-view intervals, sorted by key.
	Groups []GroupResult
}

// Interval is a confidence interval around an estimate: the true
// aggregate lies in [Lo, Hi] with probability at least 1 − Delta.
type Interval struct {
	Lo, Hi   float64
	Estimate float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v ∈ [Lo, Hi].
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ∈ [%.6g, %.6g]", iv.Estimate, iv.Lo, iv.Hi)
}

func fromCI(iv ci.Interval) Interval {
	return Interval{Lo: iv.Lo, Hi: iv.Hi, Estimate: iv.Estimate}
}

// Agg identifies a query's aggregate function; Result.Agg and
// ExactResult.Agg report which aggregate the query computed.
type Agg int

const (
	// AggAvg is AVG(...).
	AggAvg Agg = iota
	// AggSum is SUM(...).
	AggSum
	// AggCount is COUNT(*).
	AggCount
	// AggMedian is MEDIAN(...), the 0.5-quantile.
	AggMedian
	// AggPercentile is PERCENTILE(..., p) for an arbitrary p ∈ (0,1).
	AggPercentile
	// AggVar is VAR(...), the population variance.
	AggVar
	// AggStddev is STDDEV(...), the population standard deviation.
	AggStddev
	// AggCountDistinct is COUNT(DISTINCT col) over a categorical column.
	AggCountDistinct
)

// String returns the SQL spelling: AVG, SUM, COUNT, MEDIAN,
// PERCENTILE, VAR, STDDEV, or COUNT DISTINCT.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggMedian:
		return "MEDIAN"
	case AggPercentile:
		return "PERCENTILE"
	case AggVar:
		return "VAR"
	case AggStddev:
		return "STDDEV"
	case AggCountDistinct:
		return "COUNT DISTINCT"
	default:
		return "AVG"
	}
}

func aggOf(k query.AggKind) Agg {
	switch k {
	case query.Sum:
		return AggSum
	case query.Count:
		return AggCount
	case query.Median:
		return AggMedian
	case query.Percentile:
		return AggPercentile
	case query.Var:
		return AggVar
	case query.Stddev:
		return AggStddev
	case query.CountDistinct:
		return AggCountDistinct
	default:
		return AggAvg
	}
}

// aggsOf maps the query's SELECT list onto public Agg identifiers.
func aggsOf(q query.Query) []Agg {
	list := q.AggList()
	out := make([]Agg, len(list))
	for i, a := range list {
		out[i] = aggOf(a.Kind)
	}
	return out
}

// GroupResult is the approximate answer for one group (aggregate view).
type GroupResult struct {
	// Key is the GROUP BY key ("" for ungrouped queries; composite keys
	// join column values with "|").
	Key string
	// Avg, Count and Sum are the confidence intervals for each
	// aggregate; the one matching the query's aggregate carries the
	// full guarantee.
	Avg   Interval
	Count Interval
	Sum   Interval
	// Answers holds one interval per SELECT-list aggregate, aligned
	// with the Result's (or Progress's) Aggs list. Each interval holds
	// with probability 1 − δ_view/len(Aggs) (Bonferroni split), so the
	// joint statement over the whole list holds with 1 − δ_view.
	Answers []Interval
	// Samples is the number of view rows that contributed.
	Samples int
	// Exact reports that the whole view was observed (point answer).
	Exact bool
}

// Answer returns the interval of the given aggregate from the legacy
// AVG/COUNT/SUM triple — pass the Result's Agg to get the interval
// carrying the query's full guarantee. The wider statistics (MEDIAN,
// PERCENTILE, VAR, STDDEV, COUNT DISTINCT) and multi-aggregate SELECT
// lists live in Answers, aligned with the Result's Aggs.
func (g GroupResult) Answer(a Agg) Interval {
	switch a {
	case AggSum:
		return g.Sum
	case AggCount:
		return g.Count
	default:
		return g.Avg
	}
}

// Result is the outcome of an approximate query.
type Result struct {
	// Agg is the first (for single-aggregate queries, the only)
	// aggregate the query computed; each group's Answer(Agg) interval
	// carries the query's full guarantee.
	Agg Agg
	// Aggs lists every SELECT-list aggregate in order; each group's
	// Answers slice aligns with it. Single-aggregate queries get a
	// one-element list.
	Aggs []Agg
	// Groups holds one entry per observed group, sorted by Key.
	Groups []GroupResult
	// BlocksFetched counts storage blocks actually read, the paper's
	// hardware-independent cost metric.
	BlocksFetched int
	// RowsCovered counts rows whose view membership was resolved.
	RowsCovered int
	// Rounds is the number of interval recomputations performed.
	Rounds int
	// StartBlock is the storage block the scan began at: the
	// seed-derived random position for solo runs, or the shared scan's
	// admission frontier under WithSharedScan. Re-running the query
	// with WithStartBlock(StartBlock) reproduces the execution byte for
	// byte.
	StartBlock int
	// Stopped reports early termination via the stopping condition;
	// Exhausted reports a complete scan; Aborted reports that an
	// OnProgress callback ended the scan (intervals remain valid).
	Stopped, Exhausted, Aborted bool
	// Degraded reports that WithDegradedReads let the scan skip
	// quarantined (permanently unreadable) blocks: the intervals are
	// still valid (1−δ) CIs — the damaged rows are charged at their
	// catalog-bound worst case, exactly like unscanned rows — but they
	// cannot tighten past that loss. QuarantinedBlocks counts the blocks
	// skipped.
	Degraded          bool
	QuarantinedBlocks int
	// Duration is the wall-clock execution time.
	Duration time.Duration
}

// Group returns the result for a key, or nil. Groups is sorted by Key,
// so the lookup is a binary search.
func (r *Result) Group(key string) *GroupResult {
	i := sort.Search(len(r.Groups), func(i int) bool { return r.Groups[i].Key >= key })
	if i < len(r.Groups) && r.Groups[i].Key == key {
		return &r.Groups[i]
	}
	return nil
}

// DecidedAbove returns the keys of groups whose AVG interval lies
// entirely above v — the w.h.p.-correct result set of
// "HAVING AVG(...) > v" once a threshold-stopped query terminates.
func (r *Result) DecidedAbove(v float64) []string {
	var keys []string
	for _, g := range r.Groups {
		if g.Avg.Lo > v {
			keys = append(keys, g.Key)
		}
	}
	return keys
}

// DecidedBelow returns the keys of groups whose AVG interval lies
// entirely below v ("HAVING AVG(...) < v").
func (r *Result) DecidedBelow(v float64) []string {
	var keys []string
	for _, g := range r.Groups {
		if g.Avg.Hi < v {
			keys = append(keys, g.Key)
		}
	}
	return keys
}

// Undecided returns the keys of groups whose AVG interval still
// contains v (possible only if the query was aborted or hit MaxRows
// before the threshold condition resolved).
func (r *Result) Undecided(v float64) []string {
	var keys []string
	for _, g := range r.Groups {
		if g.Avg.Contains(v) {
			keys = append(keys, g.Key)
		}
	}
	return keys
}

// SessionDelta splits a total failure budget across q independent
// queries by union bound: running q queries each with the returned δ
// keeps the probability that ANY of them errs below total. The paper
// (§4.1) notes this division is needed when one scramble serves many
// queries; at the default δ=1e−15 per query, any practical session
// stays effectively deterministic without adjustment.
func SessionDelta(total float64, q int) float64 {
	if q <= 1 {
		return total
	}
	return total / float64(q)
}

// Query executes an approximate query against the table. The context
// is checked at every interval-recomputation round: when it is
// cancelled or its deadline expires, the scan stops and the partial
// Result is returned with Aborted set — its intervals remain valid
// (1−δ) CIs at the point the scan stopped. A context that is already
// done before any work starts returns ctx.Err() instead.
func (t *Table) Query(ctx context.Context, q QueryBuilder, opts ...Option) (*Result, error) {
	var s runSettings
	s.apply(opts)
	return t.runQuery(ctx, q.build(), s)
}

// Run executes an approximate query against the table.
//
// Deprecated: use Query, which adds context cancellation and takes
// functional options.
func (t *Table) Run(q QueryBuilder, opts ExecOptions) (*Result, error) {
	return t.runQuery(context.Background(), q.build(), opts.settings())
}

// settings converts the deprecated options struct onto the resolved
// configuration the functional options build.
func (o ExecOptions) settings() runSettings {
	return runSettings{
		bounder:          o.Bounder,
		strategy:         o.Strategy,
		delta:            o.Delta,
		roundRows:        o.RoundRows,
		seed:             o.Seed,
		maxRows:          o.MaxRows,
		exactCountBounds: o.ExactCountBounds,
		onProgress:       o.OnProgress,
	}
}

// resolveParallelism maps the WithParallelism setting onto the scan
// worker count: unset selects one worker per available CPU, explicit
// values pass through (1 = the sequential legacy path).
func (s runSettings) resolveParallelism() int {
	if s.parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.parallelism
}

// runQuery is the shared execution path beneath Table.Query, Table.Run
// and Engine.Query.
func (t *Table) runQuery(ctx context.Context, q query.Query, s runSettings) (*Result, error) {
	b, err := s.bounder.impl()
	if err != nil {
		return nil, err
	}
	execOpts := exec.Options{
		Bounder:          b,
		Strategy:         s.strategy.impl(),
		Delta:            s.delta,
		RoundRows:        s.roundRows,
		Rng:              rand.New(rand.NewPCG(s.seed, 0x9a7)),
		MaxRows:          s.maxRows,
		ExactCountBounds: s.exactCountBounds,
		Parallelism:      s.resolveParallelism(),
		DegradedReads:    s.degradedReads,
	}
	if s.haveStartBlock {
		execOpts.StartBlock, execOpts.Rng = s.startBlock, nil
	}
	if s.onProgress != nil {
		cb := s.onProgress
		execOpts.OnRound = func(s exec.RoundSnapshot) bool {
			p := Progress{
				Agg:               aggOf(q.AggList()[0].Kind),
				Aggs:              aggsOf(q),
				Round:             s.Round,
				RowsCovered:       s.RowsCovered,
				BlocksFetched:     s.BlocksFetched,
				ActiveGroups:      s.NumActive,
				Degraded:          s.Degraded,
				QuarantinedBlocks: s.QuarantinedBlocks,
			}
			for _, g := range s.Groups {
				p.Groups = append(p.Groups, groupFromExec(g))
			}
			return cb(p)
		}
	}
	var res *exec.Result
	if s.sharedScan {
		res, err = t.sharedDriver().Run(ctx, q, execOpts)
	} else {
		res, err = exec.RunContext(ctx, t.t, q, execOpts)
	}
	if err != nil {
		return nil, err
	}
	out := &Result{
		Agg:               aggOf(q.AggList()[0].Kind),
		Aggs:              aggsOf(q),
		BlocksFetched:     res.BlocksFetched,
		RowsCovered:       res.RowsCovered,
		Rounds:            res.Rounds,
		StartBlock:        res.StartBlock,
		Stopped:           res.Stopped,
		Exhausted:         res.Exhausted,
		Aborted:           res.Aborted,
		Degraded:          res.Degraded,
		QuarantinedBlocks: res.QuarantinedBlocks,
		Duration:          res.Duration,
	}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, groupFromExec(g))
	}
	return out, nil
}

// groupFromExec converts one exec-layer group answer, carrying both the
// legacy AVG/COUNT/SUM triple and the per-SELECT-list Answers.
func groupFromExec(g exec.GroupResult) GroupResult {
	out := GroupResult{
		Key:     g.Key,
		Avg:     fromCI(g.Avg),
		Count:   fromCI(g.Count),
		Sum:     fromCI(g.Sum),
		Samples: g.Samples,
		Exact:   g.Exact,
	}
	if len(g.Aggs) > 0 {
		out.Answers = make([]Interval, len(g.Aggs))
		for i, a := range g.Aggs {
			out.Answers[i] = fromCI(a.Interval)
		}
	}
	return out
}

// ExactGroup is one group's exact aggregate values.
type ExactGroup struct {
	Key   string
	Count int
	Sum   float64
	Avg   float64
	// Stats holds one exact value per SELECT-list aggregate, aligned
	// with the ExactResult's Aggs list.
	Stats []float64
}

// Value returns the given aggregate's exact value from the legacy
// AVG/COUNT/SUM triple; use Stat for positional SELECT-list access.
func (g ExactGroup) Value(a Agg) float64 {
	switch a {
	case AggSum:
		return g.Sum
	case AggCount:
		return float64(g.Count)
	default:
		return g.Avg
	}
}

// Stat returns the exact value of the i-th SELECT-list aggregate.
func (g ExactGroup) Stat(i int) float64 { return g.Stats[i] }

// ExactResult is the exact evaluation of a query via a full scan.
type ExactResult struct {
	// Agg is the first (for single-aggregate queries, the only)
	// aggregate the query computed.
	Agg Agg
	// Aggs lists every SELECT-list aggregate in order; each group's
	// Stats slice aligns with it.
	Aggs     []Agg
	Groups   []ExactGroup
	Duration time.Duration
}

// Group returns the exact values for a key, or nil. Groups is sorted
// by Key, so the lookup is a binary search.
func (r *ExactResult) Group(key string) *ExactGroup {
	i := sort.Search(len(r.Groups), func(i int) bool { return r.Groups[i].Key >= key })
	if i < len(r.Groups) && r.Groups[i].Key == key {
		return &r.Groups[i]
	}
	return nil
}

// QueryExact evaluates the query exactly with a full scan (the
// paper's Exact baseline; also the ground truth for validation). The
// scan is partitioned across WithParallelism workers (default one per
// CPU); per-group counts merge exactly and sums in partition order, so
// answers across worker counts agree up to floating-point summation
// order. The context is checked periodically during the scan; an exact
// answer has no valid partial form, so cancellation returns ctx.Err().
// Options other than WithParallelism are ignored.
func (t *Table) QueryExact(ctx context.Context, q QueryBuilder, opts ...Option) (*ExactResult, error) {
	var s runSettings
	s.apply(opts)
	qq := q.build()
	res, err := exact.RunParallelContext(ctx, t.t, qq, s.resolveParallelism())
	if err != nil {
		return nil, err
	}
	out := &ExactResult{Agg: aggOf(qq.AggList()[0].Kind), Aggs: aggsOf(qq), Duration: res.Duration}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, ExactGroup{
			Key: g.Key, Count: g.Count, Sum: g.Sum, Avg: g.Avg,
			Stats: append([]float64(nil), g.Stats...),
		})
	}
	return out, nil
}

// RunExact evaluates the query exactly with a full scan.
//
// Deprecated: use QueryExact, which adds context cancellation.
func (t *Table) RunExact(q QueryBuilder) (*ExactResult, error) {
	return t.QueryExact(context.Background(), q)
}
