// BenchmarkSharedScanConcurrency is the headline cooperative-scan
// measurement: 8 concurrent identical queries against one table, run
// as 8 independent scans ("solo") versus one shared circulating scan
// ("shared"). Wall-clock time is the benchmark metric; "blocks/op"
// reports the physical blocks fetched per op (all 8 queries together),
// which for the shared driver collapses from ~8 scans to ~1.
package fastframe

import (
	"context"
	"sync"
	"testing"
)

const sharedBenchQueries = 8

var (
	sharedBenchOnce sync.Once
	sharedBenchTab  *Table
)

func getSharedBenchTable(b *testing.B) *Table {
	b.Helper()
	sharedBenchOnce.Do(func() {
		tab, err := GenerateFlights(500_000, 42)
		if err != nil {
			panic(err)
		}
		sharedBenchTab = tab
	})
	return sharedBenchTab
}

func runSharedBench(b *testing.B, shared bool) {
	tab := getSharedBenchTable(b)
	ctx := context.Background()
	q := Avg("DepDelay").GroupBy("Airline")
	// Fixed work per query — a row cap instead of a convergence race —
	// so solo and shared scan exactly the same span per query.
	base := []Option{
		WithDelta(1e-9),
		WithRoundRows(5000),
		WithMaxRows(250_000),
		WithParallelism(1),
	}
	if shared {
		base = append(base, WithSharedScan())
	}

	var totalBlocks int64
	before := tab.SharedScanStats() // counters persist across reruns; diff them
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := append(append([]Option{}, base...), WithSeed(uint64(i)))
		var wg sync.WaitGroup
		results := make([]*Result, sharedBenchQueries)
		for k := 0; k < sharedBenchQueries; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				res, err := tab.Query(ctx, q, opts...)
				if err != nil {
					b.Error(err)
					return
				}
				results[k] = res
			}(k)
		}
		wg.Wait()
		if !shared {
			for _, res := range results {
				if res != nil {
					totalBlocks += int64(res.BlocksFetched)
				}
			}
		}
	}
	b.StopTimer()
	if shared {
		totalBlocks = tab.SharedScanStats().BlocksFetched - before.BlocksFetched
	}
	b.ReportMetric(float64(totalBlocks)/float64(b.N), "blocks/op")
}

func BenchmarkSharedScanConcurrency(b *testing.B) {
	b.Run("solo", func(b *testing.B) { runSharedBench(b, false) })
	b.Run("shared", func(b *testing.B) { runSharedBench(b, true) })
}
