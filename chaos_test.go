package fastframe

import (
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
	"time"

	"fastframe/internal/blockstore"
)

// silentRetries installs a retry policy whose backoff is recorded on a
// no-op clock, so chaos runs retry and quarantine at full speed.
func silentRetries(pool *BufferPool) {
	pool.p.SetRetryPolicy(blockstore.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
}

// colIndex resolves a column name to its store column index.
func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	sch := tab.t.Schema()
	for i := 0; i < sch.NumColumns(); i++ {
		if sch.Column(i).Name == name {
			return i
		}
	}
	t.Fatalf("no column %q", name)
	return -1
}

// TestChaosTransientFaultsHealByteIdentical injects transient faults
// (every third segment fails its first read attempt) under a tiny pool
// that re-reads constantly: the retry loop must absorb every fault and
// the Results must stay byte-identical to the fully resident runs —
// a healed transient is invisible, not silently degrading.
func TestChaosTransientFaultsHealByteIdentical(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	ctx := context.Background()
	cases := []struct {
		name string
		q    QueryBuilder
	}{
		{"avg-relerr", Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.05)},
		{"sum-grouped", Sum("DepDelay").GroupBy("Airline").StopWhenThresholdDecided(2000)},
		{"count", CountRows().WhereGreater("DepTime", 1500).StopAtAbsError(3000)},
	}

	pool := NewBufferPool(1 << 14) // evicts constantly: faults recur across rounds
	defer pool.Close()
	silentRetries(pool)
	ooc, err := OpenTable(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	ooc.InjectStorageFault(func(col, block, attempt int) error {
		if (col+block)%3 == 0 && attempt == 0 {
			return errors.New("injected transient fault")
		}
		return nil
	})

	for _, p := range []int{1, 4} {
		for _, tc := range cases {
			want, err := tab.Query(ctx, tc.q, sharedCommon(WithParallelism(p))...)
			if err != nil {
				t.Fatalf("%s/P=%d resident: %v", tc.name, p, err)
			}
			got, err := ooc.Query(ctx, tc.q, sharedCommon(WithParallelism(p))...)
			if err != nil {
				t.Fatalf("%s/P=%d faulted: %v", tc.name, p, err)
			}
			if got.Degraded || got.QuarantinedBlocks != 0 {
				t.Errorf("%s/P=%d: healed run reports degraded=%v quarantined=%d",
					tc.name, p, got.Degraded, got.QuarantinedBlocks)
			}
			if !reflect.DeepEqual(stripTimes(got), stripTimes(want)) {
				t.Errorf("%s/P=%d: faulted out-of-core run differs from resident", tc.name, p)
			}
		}
	}

	fs := ooc.t.Store().FaultStats()
	if fs.Retries == 0 || fs.IOErrors == 0 {
		t.Errorf("chaos did not bite: %+v", fs)
	}
	if fs.QuarantinedBlocks != 0 {
		t.Errorf("transient faults quarantined %d blocks", fs.QuarantinedBlocks)
	}
}

// TestChaosPermanentFaultDefaultError makes one column permanently
// unreadable. Default mode: a query touching it fails at a round
// boundary with a classified *blockstore.BlockError carrying the
// registered table name — while a concurrent shared-scan cohort on
// healthy columns is untouched, each answer still byte-identical to a
// solo resident replay.
func TestChaosPermanentFaultDefaultError(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	pool := NewBufferPool(1 << 20)
	defer pool.Close()
	silentRetries(pool)
	ooc, err := OpenTable(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()

	eng := NewEngine(WithSessionBudget(1e-6, 100))
	if err := eng.Register("flights", ooc); err != nil {
		t.Fatal(err)
	}
	solo := NewEngine(WithSessionBudget(1e-6, 100))
	if err := solo.Register("flights", tab); err != nil {
		t.Fatal(err)
	}

	depTime := colIndex(t, tab, "DepTime")
	ooc.InjectStorageFault(func(col, block, attempt int) error {
		if col == depTime {
			return errors.New("injected permanent fault")
		}
		return nil
	})

	ctx := context.Background()
	healthy := []string{
		"SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%",
		"SELECT SUM(DepDelay) FROM flights GROUP BY Airline HAVING SUM(DepDelay) > 2000",
		"SELECT AVG(DepDelay) FROM flights GROUP BY Origin ORDER BY AVG(DepDelay) DESC LIMIT 3",
	}
	poisoned := "SELECT AVG(DepTime) FROM flights WITHIN 5%"

	type outcome struct {
		res *Result
		err error
	}
	results := make([]outcome, len(healthy))
	var wg sync.WaitGroup
	var poisonErr error
	for i, sqlText := range healthy {
		wg.Add(1)
		go func(i int, sqlText string) {
			defer wg.Done()
			res, err := eng.Query(ctx, sqlText, sharedCommon(WithSharedScan())...)
			results[i] = outcome{res, err}
		}(i, sqlText)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, poisonErr = eng.Query(ctx, poisoned, sharedCommon(WithSharedScan())...)
	}()
	wg.Wait()

	if poisonErr == nil {
		t.Fatal("query over the unreadable column succeeded")
	}
	table, col, _, kind, ok := StorageFault(poisonErr)
	if !ok {
		t.Fatalf("poisoned query error is not a storage fault: %v", poisonErr)
	}
	if table != "flights" || col != depTime || kind != "io" {
		t.Errorf("fault identity: table=%q col=%d kind=%q", table, col, kind)
	}

	for i, sqlText := range healthy {
		if results[i].err != nil {
			t.Fatalf("cohort member %s failed alongside the poisoned query: %v", sqlText, results[i].err)
		}
		replay, err := solo.Query(ctx, sqlText, sharedCommon(WithStartBlock(results[i].res.StartBlock))...)
		if err != nil {
			t.Fatalf("%s replay: %v", sqlText, err)
		}
		if !reflect.DeepEqual(stripTimes(results[i].res), stripTimes(replay)) {
			t.Errorf("%s: cohort answer disturbed by the poisoned member", sqlText)
		}
	}

	// The engine stays serviceable after the failure.
	if _, err := eng.Query(ctx, healthy[0], sharedCommon()...); err != nil {
		t.Fatalf("engine wedged after storage failure: %v", err)
	}
}

// TestChaosDegradedReadsConservative is the Monte-Carlo validity check:
// random subsets of one column's blocks fail permanently, and queries
// opted into WithDegradedReads must skip them, mark the Result
// Degraded, and still return intervals containing the exact resident
// answer — across sequential, parallel, and shared-scan execution.
func TestChaosDegradedReadsConservative(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	ctx := context.Background()
	depDelay := colIndex(t, tab, "DepDelay")

	q := Avg("DepDelay").GroupBy("Airline").StopAtAbsError(1.0)
	exact, err := tab.QueryExact(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	exactAvg := map[string]float64{}
	exactCount := map[string]int{}
	for _, g := range exact.Groups {
		exactAvg[g.Key] = g.Avg
		exactCount[g.Key] = g.Count
	}

	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 1234))
		bad := map[int]bool{}
		for b := 0; b < tab.NumBlocks(); b++ {
			if rng.IntN(10) == 0 { // ~10% of blocks unreadable
				bad[b] = true
			}
		}

		pool := NewBufferPool(1 << 20)
		silentRetries(pool)
		ooc, err := OpenTable(path, pool)
		if err != nil {
			t.Fatal(err)
		}
		ooc.InjectStorageFault(func(col, block, attempt int) error {
			if col == depDelay && bad[block] {
				return errors.New("injected permanent fault")
			}
			return nil
		})

		modes := []struct {
			name string
			opts []Option
		}{
			{"seq", sharedCommon(WithDegradedReads(), WithParallelism(1))},
			{"par4", sharedCommon(WithDegradedReads(), WithParallelism(4))},
			{"shared", sharedCommon(WithDegradedReads(), WithSharedScan())},
		}
		for _, m := range modes {
			res, err := ooc.Query(ctx, q, m.opts...)
			if err != nil {
				t.Fatalf("trial %d/%s: degraded query failed: %v", trial, m.name, err)
			}
			if len(bad) > 0 {
				if !res.Degraded || res.QuarantinedBlocks == 0 {
					t.Fatalf("trial %d/%s: %d bad blocks but Degraded=%v quarantined=%d",
						trial, m.name, len(bad), res.Degraded, res.QuarantinedBlocks)
				}
			}
			for _, g := range res.Groups {
				want, okAvg := exactAvg[g.Key]
				if !okAvg {
					t.Fatalf("trial %d/%s: unexpected group %q", trial, m.name, g.Key)
				}
				if g.Avg.Lo > want || want > g.Avg.Hi {
					t.Errorf("trial %d/%s group %q: AVG interval [%v, %v] misses exact %v",
						trial, m.name, g.Key, g.Avg.Lo, g.Avg.Hi, want)
				}
				wc := float64(exactCount[g.Key])
				if g.Count.Lo > wc || wc > g.Count.Hi {
					t.Errorf("trial %d/%s group %q: COUNT interval [%v, %v] misses exact %v",
						trial, m.name, g.Key, g.Count.Lo, g.Count.Hi, wc)
				}
			}
		}

		if err := ooc.Close(); err != nil {
			t.Fatal(err)
		}
		pool.Close()
	}
}

// TestChaosDefaultModeNoDegradedResult pins down the default contract:
// without WithDegradedReads a permanently unreadable block yields an
// error — never a silently narrowed Result.
func TestChaosDefaultModeNoDegradedResult(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	pool := NewBufferPool(1 << 20)
	defer pool.Close()
	silentRetries(pool)
	ooc, err := OpenTable(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	depDelay := colIndex(t, tab, "DepDelay")
	ooc.InjectStorageFault(func(col, block, attempt int) error {
		if col == depDelay && block == 7 {
			return errors.New("injected permanent fault")
		}
		return nil
	})

	// Exhaustive stop guarantees the scan reaches block 7.
	q := Avg("DepDelay").StopAtAbsError(0.0001)
	res, err := ooc.Query(context.Background(), q, sharedCommon()...)
	if err == nil {
		t.Fatalf("default mode returned a Result (%+v) over an unreadable block", res)
	}
	if _, _, block, _, ok := StorageFault(err); !ok || block != 7 {
		t.Fatalf("error does not identify the damaged block: %v", err)
	}
}
