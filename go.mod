module fastframe

go 1.23
