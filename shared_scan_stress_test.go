package fastframe

import (
	"context"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSharedScanStress hammers one table's cooperative scan driver
// with goroutines that repeatedly attach and detach queries through
// every exit path — convergence, row caps, context cancellation
// mid-round, and Rows.Close mid-stream — and checks three invariants:
// no goroutines leak, every produced result carries well-formed
// intervals (aborted ones included: the optional-stopping construction
// keeps partial intervals valid wherever the scan stops), and nothing
// races (the suite runs under -race in CI).
func TestSharedScanStress(t *testing.T) {
	tab := smallFlights(t)
	baseline := runtime.NumGoroutine()

	const workers = 8
	iters := 12
	if testing.Short() {
		iters = 4
	}

	checkResult := func(res *Result, kind string) {
		t.Helper()
		if res == nil {
			t.Errorf("%s: nil result without error", kind)
			return
		}
		for _, g := range res.Groups {
			iv := g.Answer(res.Agg)
			if !(iv.Lo <= iv.Estimate && iv.Estimate <= iv.Hi) {
				t.Errorf("%s: malformed interval for %q: %+v", kind, g.Key, iv)
			}
			if g.Samples <= 0 {
				t.Errorf("%s: group %q reported with no samples", kind, g.Key)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 0x57e))
			for i := 0; i < iters; i++ {
				seed := rng.Uint64()
				opts := []Option{
					WithSharedScan(),
					WithDelta(1e-9),
					WithRoundRows(1000),
					WithSeed(seed),
					WithParallelism(1 + int(seed%2)*3), // 1 or 4
				}
				switch i % 4 {
				case 0: // converge normally
					res, err := tab.Query(context.Background(),
						Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.1), opts...)
					if err != nil {
						t.Errorf("converge: %v", err)
						continue
					}
					checkResult(res, "converge")
				case 1: // row cap mid-round
					res, err := tab.Query(context.Background(),
						Sum("DepDelay").GroupBy("Airline"), append(opts, WithMaxRows(3000+int(seed%5000)))...)
					if err != nil {
						t.Errorf("maxrows: %v", err)
						continue
					}
					checkResult(res, "maxrows")
				case 2: // context cancellation mid-round
					ctx, cancel := context.WithCancel(context.Background())
					res, err := tab.Query(ctx,
						Avg("DepDelay").GroupBy("Airline"),
						append(opts, WithProgress(func(p Progress) bool {
							if p.Round == 1+int(seed%3) {
								cancel()
							}
							return true
						}))...)
					cancel()
					if err != nil {
						t.Errorf("cancel: %v", err)
						continue
					}
					if !res.Aborted && !res.Stopped && !res.Exhausted {
						t.Errorf("cancel: result neither aborted nor finished: %+v", res)
					}
					checkResult(res, "cancel")
				case 3: // Rows.Close after a few rounds
					rows, err := tab.Stream(context.Background(),
						CountRows().WhereGreater("DepTime", 1200), opts...)
					if err != nil {
						t.Errorf("stream: %v", err)
						continue
					}
					pulls := int(seed % 3)
					for k := 0; k <= pulls && rows.Next(); k++ {
						snap := rows.Snapshot()
						if snap.Round <= 0 {
							t.Errorf("stream: snapshot without a round: %+v", snap)
						}
					}
					if err := rows.Close(); err != nil {
						t.Errorf("stream close: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every query detached and every driver loop parked: the goroutine
	// count must come back to the baseline (allow a little slack for
	// the runtime's own background goroutines).
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
