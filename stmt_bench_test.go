package fastframe

import "testing"

// benchSQL is a representative parameterized statement: predicate
// values, a GROUP BY, and a stopping target.
const benchSQL = "SELECT AVG(DepDelay) FROM flights WHERE Origin = ? AND DepTime > ? GROUP BY Airline WITHIN ABS ?"

// BenchmarkPrepareOnce measures the run-many half of a prepared
// statement: the SQL text was compiled once, so each iteration only
// binds arguments and plans the bound statement.
func BenchmarkPrepareOnce(b *testing.B) {
	eng := NewEngine()
	stmt, err := eng.Prepare(benchSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Bind("ORD", 1200.0, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileEachTime is the baseline BenchmarkPrepareOnce beats:
// the plan cache is disabled, so every iteration re-lexes, re-parses
// and re-plans the statement text — what Engine.Query cost per call
// before the prepared-statement redesign.
func BenchmarkCompileEachTime(b *testing.B) {
	eng := NewEngine(WithPlanCacheSize(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt, err := eng.Prepare(benchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stmt.Bind("ORD", 1200.0, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit measures the one-shot Engine path for repeated
// query text: the LRU plan cache resolves the statement, skipping the
// parser entirely.
func BenchmarkPlanCacheHit(b *testing.B) {
	eng := NewEngine()
	const literal = "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' GROUP BY Airline WITHIN ABS 0.5"
	if _, err := eng.Prepare(literal); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl, err := eng.template(literal)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tmpl.Bind(); err != nil {
			b.Fatal(err)
		}
	}
}
