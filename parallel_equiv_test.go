package fastframe

import (
	"context"
	"reflect"
	"testing"
)

// stripTimes zeroes wall-clock fields so two Results can be compared
// byte for byte.
func stripTimes(r *Result) *Result {
	r.Duration = 0
	return r
}

// TestPublicParallelEquivalence is the public-surface counterpart of
// the exec-level equivalence property: Table.Query with parallelism 1,
// 2, 4, and 8 returns byte-identical Results for a fixed seed, across
// AVG/SUM/COUNT, GROUP BY, HAVING-style threshold stops, and
// abort-mid-scan.
func TestPublicParallelEquivalence(t *testing.T) {
	tab := smallFlights(t)
	ctx := context.Background()
	cases := []struct {
		name string
		q    QueryBuilder
		opts []Option
	}{
		{"avg-relerr", Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.05), nil},
		{"sum-having", Sum("DepDelay").GroupBy("Airline").StopWhenThresholdDecided(2000), nil},
		{"count-abswidth", CountRows().WhereGreater("DepTime", 1500).StopAtAbsError(3000), nil},
		{"avg-grouped-topk", Avg("DepDelay").GroupBy("Origin").StopWhenTopKSeparated(3), nil},
		{"avg-maxrows", Avg("DepDelay").GroupBy("Airline"), []Option{WithMaxRows(9777)}},
		{"avg-abort", Avg("DepDelay").GroupBy("Airline"), []Option{
			WithProgress(func(p Progress) bool { return p.Round < 4 }),
		}},
	}
	for _, tc := range cases {
		for _, st := range []Strategy{ScanStrategy, ActiveSyncStrategy} {
			common := append([]Option{
				WithStrategy(st),
				WithDelta(1e-9),
				WithRoundRows(2000),
				WithSeed(99),
			}, tc.opts...)
			base, err := tab.Query(ctx, tc.q, append(common, WithParallelism(1))...)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", tc.name, st, err)
			}
			stripTimes(base)
			for _, p := range []int{2, 4, 8} {
				got, err := tab.Query(ctx, tc.q, append(common, WithParallelism(p))...)
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", tc.name, st, p, err)
				}
				if !reflect.DeepEqual(base, stripTimes(got)) {
					t.Errorf("%s/%s: P=%d differs from sequential", tc.name, st, p)
				}
			}
		}
	}
}

// TestParallelHintSQL checks that the PARALLEL n clause parses through
// Engine.Query, that it never changes answers, and that an explicit
// WithParallelism option overrides the hint.
func TestParallelHintSQL(t *testing.T) {
	tab := smallFlights(t)
	eng := NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 10%"
	common := []Option{WithStrategy(ScanStrategy), WithDelta(1e-9), WithRoundRows(2000), WithSeed(5)}

	seq, err := eng.Query(ctx, q+" PARALLEL 1", common...)
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := eng.Query(ctx, q+" PARALLEL 4", common...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTimes(seq), stripTimes(hinted)) {
		t.Error("PARALLEL 4 changed the answer")
	}
	// Explicit option wins over the hint; still identical answers.
	over, err := eng.Query(ctx, q+" PARALLEL 4", append(common, WithParallelism(1))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTimes(seq), stripTimes(over)) {
		t.Error("WithParallelism override changed the answer")
	}

	if _, err := eng.Query(ctx, q+" PARALLEL 0", common...); err == nil {
		t.Error("PARALLEL 0 accepted")
	}
	if _, err := eng.Query(ctx, q+" PARALLEL x", common...); err == nil {
		t.Error("PARALLEL x accepted")
	}
}

// TestQueryExactParallel checks that exact scans honor WithParallelism
// and that counts are identical across worker counts (sums may differ
// in the last ulp by summation order, counts never).
func TestQueryExactParallel(t *testing.T) {
	tab := smallFlights(t)
	ctx := context.Background()
	q := CountRows().Where("Origin", "ORD")
	seq, err := tab.QueryExact(ctx, q, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := tab.QueryExact(ctx, q, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Groups) != 1 || len(par.Groups) != 1 || seq.Groups[0].Count != par.Groups[0].Count {
		t.Errorf("exact counts differ across parallelism: %+v vs %+v", seq.Groups, par.Groups)
	}

	// The PARALLEL hint reaches the exact path through the Engine:
	// PARALLEL 1 pins strictly sequential summation, so two runs and
	// the builder-path equivalent must agree to the bit.
	eng := NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	const sqlQ = "SELECT SUM(DepDelay) FROM flights WHERE Origin = 'ORD' EXACT PARALLEL 1"
	e1, err := eng.QueryExact(ctx, sqlQ)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tab.QueryExact(ctx, Sum("DepDelay").Where("Origin", "ORD"), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Groups[0].Sum != e2.Groups[0].Sum {
		t.Errorf("PARALLEL 1 hint not honored on exact path: %v vs %v", e1.Groups[0].Sum, e2.Groups[0].Sum)
	}
	// Explicit option overrides the hint without changing counts.
	e3, err := eng.QueryExact(ctx, sqlQ, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Groups[0].Count != e3.Groups[0].Count {
		t.Errorf("exact counts differ: %d vs %d", e1.Groups[0].Count, e3.Groups[0].Count)
	}
}
