package fastframe

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func smallFlights(t testing.TB) *Table {
	t.Helper()
	tab, err := GenerateFlights(60000, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func fastOpts() ExecOptions {
	return ExecOptions{Delta: 1e-9, RoundRows: 2000}
}

func TestGenerateFlightsBasics(t *testing.T) {
	tab := smallFlights(t)
	if tab.NumRows() != 60000 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if tab.NumBlocks() != (60000+24)/25 {
		t.Errorf("NumBlocks = %d", tab.NumBlocks())
	}
	a, b, err := tab.ColumnBounds("DepDelay")
	if err != nil {
		t.Fatal(err)
	}
	if a > -180 || b < 700 {
		t.Errorf("catalog bounds [%v,%v]", a, b)
	}
	if _, _, err := tab.ColumnBounds("Origin"); err == nil {
		t.Error("ColumnBounds on categorical accepted")
	}
	vals, err := tab.CategoricalValues("Airline")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 10 {
		t.Errorf("got %d airlines", len(vals))
	}
	if _, err := tab.CategoricalValues("DepDelay"); err == nil {
		t.Error("CategoricalValues on float accepted")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.2).Named("ord-delay")
	res, err := tab.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := tab.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || len(ex.Groups) != 1 {
		t.Fatalf("group counts %d/%d", len(res.Groups), len(ex.Groups))
	}
	truth := ex.Groups[0].Avg
	if !res.Groups[0].Avg.Contains(truth) {
		t.Errorf("interval %v misses exact %v", res.Groups[0].Avg, truth)
	}
	if res.Duration <= 0 || ex.Duration <= 0 {
		t.Error("durations not recorded")
	}
}

func TestAllPublicBounders(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").GroupBy("Airline").StopAfterSamples(800)
	ex, _ := tab.RunExact(q)
	for _, b := range []Bounder{BernsteinRT, Bernstein, HoeffdingRT, Hoeffding, Anderson} {
		opts := fastOpts()
		opts.Bounder = b
		res, err := tab.Run(q, opts)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		for _, g := range res.Groups {
			if truth := ex.Group(g.Key).Avg; !g.Avg.Contains(truth) {
				t.Errorf("%v: group %s interval %v misses %v", b, g.Key, g.Avg, truth)
			}
		}
	}
	if Bounder(99).String() == "" {
		t.Error("unknown bounder String empty")
	}
	if _, err := (Bounder(99)).impl(); err == nil {
		t.Error("unknown bounder accepted")
	}
}

func TestAllPublicStrategies(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").GroupBy("Origin").StopWhenThresholdDecided(0)
	ex, _ := tab.RunExact(q)
	for _, s := range []Strategy{ScanStrategy, ActiveSyncStrategy, ActivePeekStrategy} {
		opts := fastOpts()
		opts.Strategy = s
		res, err := tab.Run(q, opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for _, g := range res.Groups {
			truth := ex.Group(g.Key).Avg
			if g.Avg.Lo > 0 && truth <= 0 {
				t.Errorf("%v: %s wrongly above 0", s, g.Key)
			}
			if g.Avg.Hi < 0 && truth >= 0 {
				t.Errorf("%v: %s wrongly below 0", s, g.Key)
			}
		}
	}
	for _, s := range []Strategy{ScanStrategy, ActiveSyncStrategy, ActivePeekStrategy, Strategy(9)} {
		if s.String() == "" {
			t.Error("empty strategy name")
		}
	}
}

func TestQueryBuilderImmutability(t *testing.T) {
	base := Avg("DepDelay").GroupBy("Airline")
	a := base.StopWhenTopKSeparated(1)
	b := base.StopWhenBottomKSeparated(2)
	if a.build().Stop == b.build().Stop {
		t.Error("builders share stop state")
	}
	if len(base.build().Pred.CatEq) != 0 {
		t.Error("base was mutated")
	}
	c := base.Where("Airline", "HP")
	if len(base.build().Pred.CatEq) != 0 || len(c.build().Pred.CatEq) != 1 {
		t.Error("Where mutated the receiver")
	}
	s := c.String()
	if !strings.Contains(s, "AVG(DepDelay)") || !strings.Contains(s, "HP") {
		t.Errorf("String() = %q", s)
	}
}

func TestQueryBuilderVariants(t *testing.T) {
	tab := smallFlights(t)

	// SUM with a range predicate.
	qs := Sum("DepDelay").WhereRange("DepTime", 800, 1200).StopAtRelError(0.5)
	res, err := tab.Run(qs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := tab.RunExact(qs)
	if !res.Groups[0].Sum.Contains(ex.Groups[0].Sum) {
		t.Errorf("sum interval %v misses %v", res.Groups[0].Sum, ex.Groups[0].Sum)
	}

	// COUNT with WhereGreater.
	qc := CountRows().WhereGreater("DepTime", 2000).StopAtRelError(0.3)
	resC, err := tab.Run(qc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	exC, _ := tab.RunExact(qc)
	if !resC.Groups[0].Count.Contains(float64(exC.Groups[0].Count)) {
		t.Errorf("count interval %v misses %d", resC.Groups[0].Count, exC.Groups[0].Count)
	}

	// Ordered stop over a small group set.
	qo := Avg("DepDelay").Where("Airline", "HP").GroupBy("DayOfWeek").StopWhenOrdered()
	if _, err := tab.Run(qo, fastOpts()); err != nil {
		t.Fatal(err)
	}

	// ScanAll gives exact results.
	qx := Avg("DepDelay").Where("Airline", "NW").ScanAll()
	resX, err := tab.Run(qx, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	exX, _ := tab.RunExact(qx)
	if !resX.Groups[0].Exact {
		t.Error("ScanAll result not exact")
	}
	if math.Abs(resX.Groups[0].Avg.Estimate-exX.Groups[0].Avg) > 1e-9 {
		t.Errorf("ScanAll avg %v != exact %v", resX.Groups[0].Avg.Estimate, exX.Groups[0].Avg)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Groups: []GroupResult{{Key: "AA"}, {Key: "HP"}}}
	if r.Group("HP") == nil || r.Group("ZZ") != nil {
		t.Error("Result.Group lookup broken")
	}
	er := &ExactResult{Groups: []ExactGroup{{Key: "AA"}}}
	if er.Group("AA") == nil || er.Group("ZZ") != nil {
		t.Error("ExactResult.Group lookup broken")
	}
	iv := Interval{Lo: 1, Hi: 3, Estimate: 2}
	if iv.Width() != 2 || !iv.Contains(1) || iv.Contains(3.1) {
		t.Error("Interval helpers broken")
	}
	if !strings.Contains(iv.String(), "[1, 3]") {
		t.Errorf("Interval.String = %q", iv.String())
	}
}

func TestTableBuilderAPI(t *testing.T) {
	tb, err := NewTableBuilder(
		Column{Name: "x", Kind: Float},
		Column{Name: "g", Kind: Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		err := tb.AppendRow(
			map[string]float64{"x": float64(i % 10)},
			map[string]string{"g": []string{"a", "b"}[i%2]},
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	tb.WidenBounds("x", -100, 100)
	if tb.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	tab, err := tb.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	a, b, _ := tab.ColumnBounds("x")
	if a != -100 || b != 100 {
		t.Errorf("bounds [%v,%v]", a, b)
	}
	q := Avg("x").GroupBy("g").StopAtAbsError(1.5)
	res, err := tab.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := tab.RunExact(q)
	for _, g := range res.Groups {
		if truth := ex.Group(g.Key).Avg; !g.Avg.Contains(truth) {
			t.Errorf("group %s misses truth", g.Key)
		}
	}
	// Duplicate column name rejected.
	if _, err := NewTableBuilder(Column{Name: "x", Kind: Float}, Column{Name: "x", Kind: Float}); err == nil {
		t.Error("duplicate columns accepted")
	}
}

func TestMeanEstimator(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := make([]float64, 50000)
	truth := 0.0
	for i := range data {
		data[i] = rng.Float64() * 10
		truth += data[i]
	}
	truth /= float64(len(data))

	est, err := NewMeanEstimator(EstimatorConfig{A: 0, B: 10, N: len(data), Delta: 1e-9, BatchRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(len(data))
	for i, idx := range perm[:20000] {
		est.Observe(data[idx])
		if (i+1)%5000 == 0 {
			iv := est.Interval()
			if !iv.Contains(truth) {
				t.Fatalf("interval %v misses truth %v at %d samples", iv, truth, i+1)
			}
		}
	}
	if est.Samples() != 20000 {
		t.Errorf("Samples = %d", est.Samples())
	}
	final := est.Interval()
	if final.Width() > 1 {
		t.Errorf("final width %v too loose", final.Width())
	}

	// Validation.
	if _, err := NewMeanEstimator(EstimatorConfig{A: 5, B: 5}); err == nil {
		t.Error("A >= B accepted")
	}
	if _, err := NewMeanEstimator(EstimatorConfig{A: 0, B: 1, Bounder: Bounder(99)}); err == nil {
		t.Error("bad bounder accepted")
	}
}

func TestDerivedBoundsAPI(t *testing.T) {
	tb, err := NewTableBuilder(
		Column{Name: "c1", Kind: Float},
		Column{Name: "c2", Kind: Float},
		Column{Name: "g", Kind: Categorical},
	)
	if err != nil {
		t.Fatal(err)
	}
	_ = tb.AppendRow(map[string]float64{"c1": 0, "c2": 0}, map[string]string{"g": "x"})
	tb.WidenBounds("c1", -3, 1)
	tb.WidenBounds("c2", -1, 3)
	tab, err := tb.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Example 1: (2c1 + 3c2 − 1)² → [0, 100].
	e := Const(2).Mul(Col("c1")).Add(Const(3).Mul(Col("c2"))).Sub(Const(1)).Square()
	lo, hi, err := tab.DerivedBounds(e)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 100 {
		t.Errorf("derived bounds [%v,%v], want [0,100]", lo, hi)
	}
	if got := e.Eval(map[string]float64{"c1": 1, "c2": 3}); got != 100 {
		t.Errorf("Eval = %v", got)
	}
	if !strings.Contains(e.String(), "^2") {
		t.Errorf("String = %q", e.String())
	}
	// Missing column.
	if _, _, err := tab.DerivedBounds(Col("nope").Abs().Neg()); err == nil {
		t.Error("missing column accepted")
	}
}
