package fastframe_test

import (
	"fmt"

	"fastframe"
)

// ExampleAvg runs a filtered average with a relative-error stopping
// condition and checks it against the exact answer.
func ExampleAvg() {
	tab, err := fastframe.GenerateFlights(200_000, 1)
	if err != nil {
		panic(err)
	}
	q := fastframe.Avg("DepDelay").
		StopAtRelError(0.3)
	res, err := tab.Run(q, fastframe.ExecOptions{Delta: 1e-9, RoundRows: 5_000})
	if err != nil {
		panic(err)
	}
	ex, err := tab.RunExact(q)
	if err != nil {
		panic(err)
	}
	g := res.Groups[0]
	fmt.Println("interval contains exact answer:", g.Avg.Contains(ex.Groups[0].Avg))
	fmt.Println("stopped early:", res.Stopped && !res.Exhausted)
	// Output:
	// interval contains exact answer: true
	// stopped early: true
}

// ExampleQueryBuilder_GroupBy decides a HAVING threshold per group.
func ExampleQueryBuilder_GroupBy() {
	tab, err := fastframe.GenerateFlights(200_000, 2)
	if err != nil {
		panic(err)
	}
	q := fastframe.Avg("DepDelay").
		GroupBy("Airline").
		StopWhenThresholdDecided(9.3)
	res, err := tab.Run(q, fastframe.ExecOptions{Delta: 1e-9, RoundRows: 5_000})
	if err != nil {
		panic(err)
	}
	ex, err := tab.RunExact(q)
	if err != nil {
		panic(err)
	}
	correct := true
	for _, key := range res.DecidedAbove(9.3) {
		if ex.Group(key).Avg <= 9.3 {
			correct = false
		}
	}
	for _, key := range res.DecidedBelow(9.3) {
		if ex.Group(key).Avg >= 9.3 {
			correct = false
		}
	}
	fmt.Println("ten airlines partitioned:", len(res.Groups) == 10)
	fmt.Println("every decision correct:", correct)
	// Output:
	// ten airlines partitioned: true
	// every decision correct: true
}

// ExampleNewMeanEstimator estimates a stream's mean with anytime-valid
// intervals, without the column store.
func ExampleNewMeanEstimator() {
	est, err := fastframe.NewMeanEstimator(fastframe.EstimatorConfig{
		A: 0, B: 100, N: 10_000, Delta: 1e-9, BatchRows: 1_000,
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5_000; i++ {
		est.Observe(float64(i%11) * 5) // values 0,5,...,50; mean 25
	}
	iv := est.Interval()
	fmt.Println("contains true mean 25:", iv.Contains(25))
	fmt.Println("width under 40:", iv.Width() < 40)
	// Output:
	// contains true mean 25: true
	// width under 40: true
}

// ExampleCol derives range bounds for an expression aggregate
// (Appendix B's Example 1).
func ExampleCol() {
	tb, err := fastframe.NewTableBuilder(
		fastframe.Column{Name: "c1", Kind: fastframe.Float},
		fastframe.Column{Name: "c2", Kind: fastframe.Float},
		fastframe.Column{Name: "g", Kind: fastframe.Categorical},
	)
	if err != nil {
		panic(err)
	}
	_ = tb.AppendRow(map[string]float64{"c1": 0, "c2": 0}, map[string]string{"g": "x"})
	tb.WidenBounds("c1", -3, 1)
	tb.WidenBounds("c2", -1, 3)
	tab, err := tb.Build(1)
	if err != nil {
		panic(err)
	}
	e := fastframe.Const(2).Mul(fastframe.Col("c1")).
		Add(fastframe.Const(3).Mul(fastframe.Col("c2"))).
		Sub(fastframe.Const(1)).
		Square()
	lo, hi, err := tab.DerivedBounds(e)
	if err != nil {
		panic(err)
	}
	fmt.Printf("derived bounds: [%g, %g]\n", lo, hi)
	// Output:
	// derived bounds: [0, 100]
}
