package fastframe

import (
	"fmt"

	"fastframe/internal/query"
)

// QueryBuilder assembles one aggregate query fluently:
//
//	fastframe.Avg("DepDelay").
//		Where("Airline", "HP").
//		WhereGreater("DepTime", 1350).
//		GroupBy("DayOfWeek").
//		StopWhenOrdered()
//
// Builders are immutable: each method returns a copy, so partial
// queries can be shared and specialized.
type QueryBuilder struct {
	q query.Query
}

// Avg starts an AVG(column) query.
func Avg(column string) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "AVG(" + column + ")",
		Agg:  query.Aggregate{Kind: query.Avg, Column: column},
		Stop: query.Exhaust(),
	}}
}

// Sum starts a SUM(column) query.
func Sum(column string) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "SUM(" + column + ")",
		Agg:  query.Aggregate{Kind: query.Sum, Column: column},
		Stop: query.Exhaust(),
	}}
}

// CountRows starts a COUNT(*) query.
func CountRows() QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "COUNT(*)",
		Agg:  query.Aggregate{Kind: query.Count},
		Stop: query.Exhaust(),
	}}
}

// Median starts a MEDIAN(column) query: the 0.5-quantile with a
// DKW-band confidence interval.
func Median(column string) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "MEDIAN(" + column + ")",
		Agg:  query.Aggregate{Kind: query.Median, Column: column},
		Stop: query.Exhaust(),
	}}
}

// PercentileOf starts a PERCENTILE(column, p) query for p strictly
// between 0 and 1 (validated when the query runs).
func PercentileOf(column string, p float64) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: fmt.Sprintf("PERCENTILE(%s, %g)", column, p),
		Agg:  query.Aggregate{Kind: query.Percentile, Column: column, P: p},
		Stop: query.Exhaust(),
	}}
}

// Var starts a VAR(column) query (population variance).
func Var(column string) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "VAR(" + column + ")",
		Agg:  query.Aggregate{Kind: query.Var, Column: column},
		Stop: query.Exhaust(),
	}}
}

// Stddev starts a STDDEV(column) query (population standard
// deviation).
func Stddev(column string) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "STDDEV(" + column + ")",
		Agg:  query.Aggregate{Kind: query.Stddev, Column: column},
		Stop: query.Exhaust(),
	}}
}

// CountDistinct starts a COUNT(DISTINCT column) query over a
// categorical column.
func CountDistinct(column string) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "COUNT(DISTINCT " + column + ")",
		Agg:  query.Aggregate{Kind: query.CountDistinct, Column: column},
		Stop: query.Exhaust(),
	}}
}

// Select combines several aggregate builders into one multi-aggregate
// query answered on a single scan: predicates, grouping, and the
// stopping rule come from the combined builder's own method chain.
// Each aggregate's interval holds with δ_view/N so the joint guarantee
// over the whole list matches a single-aggregate query's.
//
//	fastframe.Select(fastframe.Avg("x"), fastframe.Median("x")).
//		GroupBy("g").StopAtRelError(0.05)
func Select(first QueryBuilder, rest ...QueryBuilder) QueryBuilder {
	if len(rest) == 0 {
		return first
	}
	aggs := make([]query.Aggregate, 0, 1+len(rest))
	name := first.q.Name
	aggs = append(aggs, first.q.Agg)
	for _, qb := range rest {
		aggs = append(aggs, qb.q.Agg)
		name += ", " + qb.q.Name
	}
	return QueryBuilder{q: query.Query{
		Name: name,
		Aggs: aggs,
		Stop: query.Exhaust(),
	}}
}

// AvgExpr starts an AVG over an arbitrary expression of continuous
// columns; range bounds are derived from the catalog per Appendix B of
// the paper.
func AvgExpr(e Expr) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "AVG(" + e.String() + ")",
		Agg:  query.Aggregate{Kind: query.Avg, Expr: e.e},
		Stop: query.Exhaust(),
	}}
}

// SumExpr starts a SUM over an arbitrary expression of continuous
// columns.
func SumExpr(e Expr) QueryBuilder {
	return QueryBuilder{q: query.Query{
		Name: "SUM(" + e.String() + ")",
		Agg:  query.Aggregate{Kind: query.Sum, Expr: e.e},
		Stop: query.Exhaust(),
	}}
}

// Named sets the query's display name.
func (qb QueryBuilder) Named(name string) QueryBuilder {
	qb.q.Name = name
	return qb
}

// Where adds a categorical equality predicate (column = value).
func (qb QueryBuilder) Where(column, value string) QueryBuilder {
	qb.q.Pred = qb.q.Pred.AndCatEquals(column, value)
	return qb
}

// WhereIn adds a categorical set-membership predicate
// (column IN values). Values absent from the column's dictionary are
// ignored; an entirely unknown set yields a provably empty view.
func (qb QueryBuilder) WhereIn(column string, values ...string) QueryBuilder {
	qb.q.Pred = qb.q.Pred.AndCatIn(column, values...)
	return qb
}

// WhereGreater adds a continuous predicate (column > lo).
func (qb QueryBuilder) WhereGreater(column string, lo float64) QueryBuilder {
	qb.q.Pred = qb.q.Pred.AndGreater(column, lo)
	return qb
}

// WhereRange adds a continuous predicate (lo ≤ column ≤ hi).
func (qb QueryBuilder) WhereRange(column string, lo, hi float64) QueryBuilder {
	qb.q.Pred = qb.q.Pred.AndRange(column, lo, hi)
	return qb
}

// GroupBy groups the aggregate by one or more categorical columns.
func (qb QueryBuilder) GroupBy(columns ...string) QueryBuilder {
	qb.q.GroupBy = append(append([]string(nil), qb.q.GroupBy...), columns...)
	return qb
}

// StopAfterSamples terminates once every group has m contributing
// samples (stopping condition ① of the paper).
func (qb QueryBuilder) StopAfterSamples(m int) QueryBuilder {
	qb.q.Stop = query.FixedSamples(m)
	return qb
}

// StopAtAbsError terminates once every group's CI is narrower than eps
// (condition ②).
func (qb QueryBuilder) StopAtAbsError(eps float64) QueryBuilder {
	qb.q.Stop = query.AbsWidth(eps)
	return qb
}

// StopAtRelError terminates once every group's relative CI width is
// below eps (condition ③).
func (qb QueryBuilder) StopAtRelError(eps float64) QueryBuilder {
	qb.q.Stop = query.RelWidth(eps)
	return qb
}

// StopWhenThresholdDecided terminates once every group's CI excludes v,
// i.e. each group is decided to lie above or below v w.h.p.
// (condition ④ — the HAVING accelerator).
func (qb QueryBuilder) StopWhenThresholdDecided(v float64) QueryBuilder {
	qb.q.Stop = query.Threshold(v)
	return qb
}

// StopWhenTopKSeparated terminates once the K groups with the largest
// aggregates are separated from the rest (condition ⑤; ORDER BY ... DESC
// LIMIT K).
func (qb QueryBuilder) StopWhenTopKSeparated(k int) QueryBuilder {
	qb.q.Stop = query.TopK(k)
	return qb
}

// StopWhenBottomKSeparated is StopWhenTopKSeparated for the K smallest
// aggregates (ORDER BY ... ASC LIMIT K).
func (qb QueryBuilder) StopWhenBottomKSeparated(k int) QueryBuilder {
	qb.q.Stop = query.BottomK(k)
	return qb
}

// StopWhenOrdered terminates once no two groups' CIs overlap, fixing the
// complete ordering of group aggregates w.h.p. (condition ⑥).
func (qb QueryBuilder) StopWhenOrdered() QueryBuilder {
	qb.q.Stop = query.Ordered()
	return qb
}

// ScanAll disables early stopping: the scan covers the whole scramble
// and returns exact answers (with interval width 0 up to float error).
func (qb QueryBuilder) ScanAll() QueryBuilder {
	qb.q.Stop = query.Exhaust()
	return qb
}

// String renders the query.
func (qb QueryBuilder) String() string { return qb.q.String() }

// build returns the underlying query.
func (qb QueryBuilder) build() query.Query { return qb.q }
