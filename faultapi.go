package fastframe

import (
	"errors"

	"fastframe/internal/blockstore"
)

// Fault-tolerance surface: classifying storage failures, verifying
// files offline, and reading per-table fault counters.
//
// Failure taxonomy (see internal/blockstore): every failed block read
// is a *blockstore.BlockError carrying the table label, column, block
// and a kind — "io" (physical read failure, retried with backoff),
// "checksum" (CRC32C mismatch on a format-v4 segment, retried once in
// case the read was torn), or "decode" (bytes that don't parse,
// deterministic, never retried). A block whose load fails permanently
// is quarantined in the buffer pool: by default any query touching it
// fails with the classified error; WithDegradedReads instead skips it
// with conservatively valid intervals.

// StorageFault classifies err as a storage block failure. When err (or
// anything it wraps) is a block error, StorageFault returns the damaged
// block's identity — the table label (registered name or file path),
// column index, block index, and the failure kind ("io", "checksum" or
// "decode") — and ok=true.
func StorageFault(err error) (table string, col, block int, kind string, ok bool) {
	var be *blockstore.BlockError
	if !errors.As(err, &be) {
		return "", 0, 0, "", false
	}
	return be.Table, be.Col, be.Block, be.Kind.String(), true
}

// InjectStorageFault installs fn as a fault hook on the table's
// out-of-core store: every physical block read first calls
// fn(col, block, attempt) and treats a non-nil return as an I/O failure
// (retried with backoff, then quarantined like any real fault). This is
// the public face of the chaos-testing seam — use it to rehearse the
// failure modes (structured errors, degraded reads, breaker trips)
// against a healthy file. Passing nil clears the hook. Resident tables
// have no storage to fail; InjectStorageFault reports whether the hook
// was installed.
func (t *Table) InjectStorageFault(fn func(col, block, attempt int) error) bool {
	s := t.t.Store()
	if s == nil {
		return false
	}
	s.SetFault(fn)
	return true
}

// VerifyColumn is one column's integrity report.
type VerifyColumn struct {
	Name string
	// Blocks is the column's total block count; BadBlocks how many
	// failed verification.
	Blocks, BadBlocks int
	// BadBlockIDs lists damaged block indices (capped; BadBlocks is the
	// true count) and BadBlockErrors the corresponding error strings.
	BadBlockIDs    []int
	BadBlockErrors []string
}

// VerifyReport is the result of VerifyTable.
type VerifyReport struct {
	Path      string
	Version   uint32
	Rows      int
	BlockSize int
	NumBlocks int
	Cols      []VerifyColumn
	// BadBlocks is the total damaged segment count across columns.
	BadBlocks int
}

// OK reports whether every segment verified and decoded.
func (r *VerifyReport) OK() bool { return r.BadBlocks == 0 }

// VerifyTable checks the integrity of a block-format table file (v3 or
// v4) offline: the header and footer are validated (and, on v4,
// checksummed) at open, then every data segment is read, CRC-verified
// (v4) and fully decoded. Header or footer damage fails the open and
// returns an error with a nil report; otherwise the report lists every
// damaged segment per column — inspect OK(). This is the engine behind
// `ffgen -verify`.
func VerifyTable(path string) (*VerifyReport, error) {
	rep, err := blockstore.Verify(path)
	if err != nil {
		return nil, err
	}
	out := &VerifyReport{
		Path:      rep.Path,
		Version:   rep.Version,
		Rows:      rep.Rows,
		BlockSize: rep.BlockSize,
		NumBlocks: rep.NumBlocks,
		BadBlocks: rep.BadBlocks,
		Cols:      make([]VerifyColumn, len(rep.Cols)),
	}
	for i, c := range rep.Cols {
		vc := VerifyColumn{Name: c.Name, Blocks: c.Blocks, BadBlocks: c.BadBlocks, BadBlockIDs: c.BadBlockIDs}
		for _, e := range c.Errors {
			vc.BadBlockErrors = append(vc.BadBlockErrors, e.Error())
		}
		out.Cols[i] = vc
	}
	return out, nil
}

// TableStorageStats is one out-of-core table's storage fault counters.
type TableStorageStats struct {
	// Table is the registered name; Version the on-disk format version.
	Table   string
	Version uint32
	// IOErrors and ChecksumFailures count failed physical reads by kind
	// (decode failures count as checksum failures); Retries counts
	// buffer-pool backoff retries; QuarantinedBlocks counts permanent
	// quarantine decisions against this table.
	IOErrors, ChecksumFailures int64
	Retries                    int64
	QuarantinedBlocks          int64
	// LastFaultUnixNano is the wall-clock time of the most recent fault
	// (0 if none) — the serving layer's circuit breaker ages on it.
	LastFaultUnixNano int64
}

// Faulty reports whether the table has recorded any storage fault.
func (s TableStorageStats) Faulty() bool {
	return s.IOErrors > 0 || s.ChecksumFailures > 0 || s.QuarantinedBlocks > 0
}
