package fastframe

import "testing"

func TestOnProgressPublicAPI(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").GroupBy("Airline").StopAtAbsError(2)
	var rounds int
	var lastWidth = 1e18
	opts := fastOpts()
	opts.OnProgress = func(p Progress) bool {
		rounds++
		if p.Round != rounds {
			t.Errorf("progress round %d, want %d", p.Round, rounds)
		}
		if len(p.Groups) > 0 {
			w := p.Groups[0].Avg.Width()
			if w > lastWidth+1e-9 {
				t.Errorf("interval widened across progress snapshots")
			}
			lastWidth = w
		}
		return true
	}
	res, err := tab.Run(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 || rounds != res.Rounds {
		t.Errorf("callback rounds %d, result rounds %d", rounds, res.Rounds)
	}
	if res.Aborted {
		t.Error("Aborted without abort")
	}
}

func TestOnProgressAbortPublicAPI(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").StopAtAbsError(1e-12)
	opts := fastOpts()
	opts.OnProgress = func(p Progress) bool { return p.Round < 2 }
	res, err := tab.Run(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted || res.Rounds != 2 {
		t.Errorf("Aborted=%v Rounds=%d, want abort at round 2", res.Aborted, res.Rounds)
	}
	ex, _ := tab.RunExact(q)
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Error("aborted interval misses truth")
	}
}

func TestExactCountBoundsPublicOption(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.4)
	opts := fastOpts()
	opts.ExactCountBounds = true
	res, err := tab.Run(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := tab.RunExact(q)
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Error("exact-count-bounds run misses truth")
	}
}
