// BenchmarkOutOfCoreScan measures the buffer pool's paging behaviour
// under budget pressure: the same exhaustive scan over a disk-backed
// table with a pool sized to hold the whole decoded table, half of it,
// and a tenth of it. "blocks-loaded/op" and "MB-read/op" are the
// physical cost the budget forces back onto the disk; with a full-size
// pool the steady state is all hits and both drop to ~0. CI records the
// trajectory as BENCH_8.json.
//
//	go test . -run '^$' -bench BenchmarkOutOfCoreScan -benchtime 3x
package fastframe

import (
	"context"
	"testing"
)

func BenchmarkOutOfCoreScan(b *testing.B) {
	const rows = 500_000
	tab, err := GenerateFlights(rows, 7)
	if err != nil {
		b.Fatal(err)
	}
	path := writeTempTable(b, tab)
	// Decoded working set of the benchmark query: the scan touches the
	// aggregate float column (8 B/row) and the grouping code column
	// (4 B/row); budgets are fractions of that, so "full" caches the
	// whole scan and "10pct" must re-read 90% of it every circulation.
	const decodedBytes = int64(rows) * (8 + 4)

	budgets := []struct {
		name string
		frac float64
	}{
		{"full", 1.0},
		{"half", 0.5},
		{"10pct", 0.1},
	}
	ctx := context.Background()
	q := Avg("DepDelay").GroupBy("Airline") // exhaustive: every block, every op
	opts := []Option{WithStrategy(ScanStrategy), WithRoundRows(50_000), WithSeed(7)}

	for _, tc := range budgets {
		b.Run("pool="+tc.name, func(b *testing.B) {
			pool := NewBufferPool(int64(float64(decodedBytes) * tc.frac))
			defer pool.Close()
			ooc, err := OpenTable(path, pool)
			if err != nil {
				b.Fatal(err)
			}
			defer ooc.Close()
			// One warm-up pass so the full-budget case measures its
			// steady state (all hits) rather than the cold fill.
			if _, err := ooc.Query(ctx, q, opts...); err != nil {
				b.Fatal(err)
			}
			s0 := ooc.PoolStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ooc.Query(ctx, q, opts...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s1 := ooc.PoolStats()
			n := float64(b.N)
			loads := float64(s1.Misses - s0.Misses)
			hits := float64(s1.Hits - s0.Hits)
			b.ReportMetric(loads/n, "blocks-loaded/op")
			b.ReportMetric(float64(s1.BytesRead-s0.BytesRead)/n/1e6, "MB-read/op")
			b.ReportMetric(float64(s1.Evictions-s0.Evictions)/n, "evictions/op")
			if hits+loads > 0 {
				b.ReportMetric(100*hits/(hits+loads), "hit-%")
			}
		})
	}
}
