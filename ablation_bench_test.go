// Ablation benchmarks for the design choices DESIGN.md calls out beyond
// the paper's own tables: the exact hypergeometric count bound vs
// Lemma 5, the outlier index vs (and composed with) RangeTrim, the
// δ-decay schedule, and the asymptotic-CLT comparison. These complement
// the per-table benchmarks in bench_test.go.
package fastframe

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"fastframe/internal/ci"
	"fastframe/internal/core"
	"fastframe/internal/distgen"
	"fastframe/internal/exec"
	"fastframe/internal/flights"
	"fastframe/internal/outlier"
	"fastframe/internal/priority"
	"fastframe/internal/stats"
)

// BenchmarkAblationCountBounds compares the Hoeffding–Serfling N⁺
// (Lemma 5 / Theorem 3) against the exact hypergeometric tail bound on
// a filtered AVG. At moderate coverage the two N⁺ values nearly
// coincide (the selectivity CI is already tight), so rows/op typically
// matches and the exact bound only costs CPU — quantifying why the
// paper's simpler Lemma 5 strategy is the right default.
func BenchmarkAblationCountBounds(b *testing.B) {
	t := getBenchTable(b)
	q := flights.Q1("SFO", 0.5)
	for _, exact := range []bool{false, true} {
		name := "lemma5"
		if exact {
			name = "hypergeometric"
		}
		exact := exact
		b.Run(name, func(b *testing.B) {
			var rows int
			for i := 0; i < b.N; i++ {
				res, err := exec.Run(t, q, exec.Options{
					Bounder:          core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}},
					Delta:            exec.DefaultDelta,
					RoundRows:        40_000,
					StartBlock:       i * 101,
					ExactCountBounds: exact,
				})
				if err != nil {
					b.Fatal(err)
				}
				rows = res.RowsCovered
			}
			b.ReportMetric(float64(rows), "rows/op")
		})
	}
}

// BenchmarkAblationOutlierIndex measures the CI width reached with a
// fixed sample budget under four configurations on spiky data: plain
// Hoeffding over the full range, Hoeffding over the outlier-trimmed
// remainder, Bernstein+RT over the full range, and Bernstein+RT
// composed with the outlier index (the paper's "orthogonal, could be
// leveraged together" note).
func BenchmarkAblationOutlierIndex(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 11))
	const n, m = 200_000, 5_000
	data := make([]float64, n)
	for i := range data {
		data[i] = 100 + rng.NormFloat64()*5
		if rng.Float64() < 0.001 {
			data[i] = 9500 + rng.Float64()*500
		}
	}
	ix, trimmed, err := outlier.Build(data, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	fullParams := ci.Params{A: 0, B: 10_000, N: n, Delta: 1e-15}

	runCase := func(b *testing.B, source []float64, bounder ci.Bounder, p ci.Params, viaIndex bool) {
		var width float64
		for i := 0; i < b.N; i++ {
			s := bounder.NewState()
			for _, idx := range rng.Perm(len(source))[:m] {
				s.Update(source[idx])
			}
			iv := ci.BoundInterval(s, p)
			if viaIndex {
				iv = ix.MeanInterval(iv)
			}
			width = iv.Width()
		}
		b.ReportMetric(width, "width")
	}
	b.Run("hoeffding-full", func(b *testing.B) {
		runCase(b, data, ci.HoeffdingSerfling{}, fullParams, false)
	})
	b.Run("hoeffding-outlier-index", func(b *testing.B) {
		runCase(b, trimmed, ci.HoeffdingSerfling{}, ix.Params(1e-15), true)
	})
	b.Run("bernstein-rt-full", func(b *testing.B) {
		runCase(b, data, core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}, fullParams, false)
	})
	b.Run("bernstein-rt-outlier-index", func(b *testing.B) {
		runCase(b, trimmed, core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}, ix.Params(1e-15), true)
	})
}

// BenchmarkAblationDecaySchedule compares interval width after a fixed
// number of optional-stopping rounds under the k⁻² and geometric
// schedules.
func BenchmarkAblationDecaySchedule(b *testing.B) {
	cases := []struct {
		name     string
		schedule core.DecaySchedule
	}{
		{"k2", nil},
		{"geometric-0.5", core.GeometricDecay(0.5)},
		{"geometric-0.9", core.GeometricDecay(0.9)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var width float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewPCG(3, uint64(i)))
				o := core.NewOptStop(ci.EmpiricalBernsteinSerfling{},
					ci.Params{A: 0, B: 100, N: 1 << 20, Delta: 1e-9}, 1000)
				if c.schedule != nil {
					o.SetSchedule(c.schedule)
				}
				for o.Round() < 20 {
					o.Observe(50 + rng.NormFloat64())
				}
				width = o.Interval().Width()
			}
			b.ReportMetric(width, "width@20rounds")
		})
	}
}

// BenchmarkAblationCLTWidth contrasts the asymptotic CLT interval with
// the SSI Bernstein+RT interval at equal m and δ — the
// compactness-vs-correctness tradeoff of §1 (the CLT is narrower but
// carries no finite-sample guarantee; see TestCLTUnderCoversOnHeavyTail).
func BenchmarkAblationCLTWidth(b *testing.B) {
	rng := rand.New(rand.NewPCG(21, 4))
	data := make([]float64, 100_000)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	p := ci.Params{A: 0, B: 100, N: len(data), Delta: 1e-6}
	for _, arm := range []ci.Bounder{ci.CLT{}, core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}} {
		arm := arm
		b.Run(arm.Name(), func(b *testing.B) {
			var width float64
			for i := 0; i < b.N; i++ {
				s := arm.NewState()
				for _, idx := range rng.Perm(len(data))[:2000] {
					s.Update(data[idx])
				}
				width = ci.BoundInterval(s, p).Width()
			}
			b.ReportMetric(width, "width")
		})
	}
}

// BenchmarkAblationRangeTrimOutlierRate quantifies the regime claim of
// the paper's §5.4.3: RangeTrim's advantage over the plain bounder
// shrinks as real outliers appear in the data (observed extremes
// approach the catalog bounds, leaving nothing to trim). width-ratio
// < 1 means RangeTrim is tighter.
func BenchmarkAblationRangeTrimOutlierRate(b *testing.B) {
	base := distgen.Concentrated(500, 5, 0, 10_000)
	for _, rate := range []float64{0, 1e-4, 1e-3, 1e-2} {
		dist := base
		if rate > 0 {
			dist = distgen.WithOutliers(base, rate)
		}
		rate := rate
		b.Run(fmt.Sprintf("outlier-rate-%g", rate), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(17, uint64(rate*1e6)))
			var ratio float64
			for i := 0; i < b.N; i++ {
				data := dist.Sample(rng, 100_000)
				p := ci.Params{A: dist.A, B: dist.B, N: len(data), Delta: 1e-15}
				plain := ci.EmpiricalBernsteinSerfling{}.NewState()
				trimmed := core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}.NewState()
				for _, idx := range rng.Perm(len(data))[:5000] {
					plain.Update(data[idx])
					trimmed.Update(data[idx])
				}
				ratio = ci.BoundInterval(trimmed, p).Width() / ci.BoundInterval(plain, p).Width()
			}
			b.ReportMetric(ratio, "width-ratio")
		})
	}
}

// BenchmarkPrioritySampling measures the cost of drawing a priority
// sample and estimating a subset sum (the §6 baseline).
func BenchmarkPrioritySampling(b *testing.B) {
	rng := rand.New(rand.NewPCG(31, 7))
	weights := make([]float64, 100_000)
	for i := range weights {
		weights[i] = rng.ExpFloat64() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := priority.New(rng, weights, 1000)
		if err != nil {
			b.Fatal(err)
		}
		_ = s.SumEstimate()
	}
}

// BenchmarkHypergeomCountUpper measures the exact tail bound's cost
// (binary search over K with anchored tail sums).
func BenchmarkHypergeomCountUpper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.HypergeomCountUpper(1200, 2_000_000, 40_000, 1e-17)
	}
}
