// Command ffquery runs one approximate aggregate query against a
// synthesized Flights table and prints per-group confidence intervals,
// alongside the exact answer for comparison:
//
//	ffquery -rows 1000000 -agg avg -col DepDelay -where Origin=ORD -rel 0.1
//	ffquery -agg avg -col DepDelay -group Airline -threshold 8
//	ffquery -agg avg -col DepDelay -group Origin -topk 3 -bounder hoeffding
//	ffquery -agg count -wheregt DepTime=1800 -rel 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fastframe/internal/ci"
	"fastframe/internal/core"
	"fastframe/internal/exact"
	"fastframe/internal/exec"
	"fastframe/internal/flights"
	"fastframe/internal/query"
)

func main() {
	var (
		rows      = flag.Int("rows", 500_000, "synthesized Flights rows")
		seed      = flag.Uint64("seed", 42, "dataset seed")
		aggKind   = flag.String("agg", "avg", "aggregate: avg|sum|count")
		col       = flag.String("col", "DepDelay", "aggregate column")
		where     = flag.String("where", "", "categorical predicate Column=Value (comma separated)")
		whereGt   = flag.String("wheregt", "", "numeric predicate Column=Lo meaning Column > Lo")
		group     = flag.String("group", "", "GROUP BY columns (comma separated)")
		rel       = flag.Float64("rel", 0, "stop at relative error")
		abs       = flag.Float64("abs", 0, "stop at absolute CI width")
		threshold = flag.String("threshold", "", "stop when every group decided vs this value")
		topk      = flag.Int("topk", 0, "stop when top-K separated")
		bottomk   = flag.Int("bottomk", 0, "stop when bottom-K separated")
		ordered   = flag.Bool("ordered", false, "stop when groups fully ordered")
		bounder   = flag.String("bounder", "bernstein+rt", "hoeffding|hoeffding+rt|bernstein|bernstein+rt|anderson")
		strategy  = flag.String("strategy", "active-peek", "scan|active-sync|active-peek")
		delta     = flag.Float64("delta", exec.DefaultDelta, "error probability")
	)
	flag.Parse()

	q, err := buildQuery(*aggKind, *col, *where, *whereGt, *group, *rel, *abs, *threshold, *topk, *bottomk, *ordered)
	if err != nil {
		fatal(err)
	}
	b, err := pickBounder(*bounder)
	if err != nil {
		fatal(err)
	}
	st, err := pickStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("generating %d flights rows (seed %d)...\n", *rows, *seed)
	tab, err := flights.Generate(flights.Config{Rows: *rows, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query: %s\n", q)

	res, err := exec.Run(tab, q, exec.Options{
		Bounder: b, Strategy: st, Delta: *delta, StartBlock: int(*seed),
	})
	if err != nil {
		fatal(err)
	}
	ex, err := exact.Run(tab, q)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\napprox: %.3fs, %d blocks fetched, %d rows covered, %d rounds, stopped=%v exhausted=%v\n",
		res.Duration.Seconds(), res.BlocksFetched, res.RowsCovered, res.Rounds, res.Stopped, res.Exhausted)
	fmt.Printf("exact:  %.3fs (speedup %.1fx)\n\n",
		ex.Duration.Seconds(), ex.Duration.Seconds()/res.Duration.Seconds())
	fmt.Printf("%-12s %12s %12s %12s %10s %12s\n", "group", "lo", "estimate", "hi", "samples", "exact")
	for _, g := range res.Groups {
		iv := g.Answer(q.Agg.Kind == query.Sum, q.Agg.Kind == query.Count)
		truth := "-"
		if e := ex.Group(g.Key); e != nil {
			truth = fmt.Sprintf("%.4f", e.Value(q.Agg.Kind))
		}
		key := g.Key
		if key == "" {
			key = "(all)"
		}
		fmt.Printf("%-12s %12.4f %12.4f %12.4f %10d %12s\n", key, iv.Lo, iv.Estimate, iv.Hi, g.Samples, truth)
	}
}

func buildQuery(aggKind, col, where, whereGt, group string, rel, abs float64,
	threshold string, topk, bottomk int, ordered bool) (query.Query, error) {
	q := query.Query{Name: "ffquery"}
	switch aggKind {
	case "avg":
		q.Agg = query.Aggregate{Kind: query.Avg, Column: col}
	case "sum":
		q.Agg = query.Aggregate{Kind: query.Sum, Column: col}
	case "count":
		q.Agg = query.Aggregate{Kind: query.Count}
	default:
		return q, fmt.Errorf("unknown aggregate %q", aggKind)
	}
	if where != "" {
		for _, clause := range strings.Split(where, ",") {
			parts := strings.SplitN(clause, "=", 2)
			if len(parts) != 2 {
				return q, fmt.Errorf("bad -where clause %q", clause)
			}
			q.Pred = q.Pred.AndCatEquals(parts[0], parts[1])
		}
	}
	if whereGt != "" {
		parts := strings.SplitN(whereGt, "=", 2)
		if len(parts) != 2 {
			return q, fmt.Errorf("bad -wheregt clause %q", whereGt)
		}
		lo, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return q, fmt.Errorf("bad -wheregt value: %w", err)
		}
		q.Pred = q.Pred.AndGreater(parts[0], lo)
	}
	if group != "" {
		q.GroupBy = strings.Split(group, ",")
	}
	switch {
	case rel > 0:
		q.Stop = query.RelWidth(rel)
	case abs > 0:
		q.Stop = query.AbsWidth(abs)
	case threshold != "":
		v, err := strconv.ParseFloat(threshold, 64)
		if err != nil {
			return q, fmt.Errorf("bad -threshold: %w", err)
		}
		q.Stop = query.Threshold(v)
	case topk > 0:
		q.Stop = query.TopK(topk)
	case bottomk > 0:
		q.Stop = query.BottomK(bottomk)
	case ordered:
		q.Stop = query.Ordered()
	default:
		q.Stop = query.Exhaust()
	}
	return q, q.Validate()
}

func pickBounder(name string) (ci.Bounder, error) {
	switch name {
	case "hoeffding":
		return ci.HoeffdingSerfling{}, nil
	case "hoeffding+rt":
		return core.RangeTrim{Inner: ci.HoeffdingSerfling{}}, nil
	case "bernstein":
		return ci.EmpiricalBernsteinSerfling{}, nil
	case "bernstein+rt":
		return core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}, nil
	case "anderson":
		return ci.AndersonDKW{}, nil
	default:
		return nil, fmt.Errorf("unknown bounder %q", name)
	}
}

func pickStrategy(name string) (exec.Strategy, error) {
	switch name {
	case "scan":
		return exec.Scan, nil
	case "active-sync":
		return exec.ActiveSync, nil
	case "active-peek":
		return exec.ActivePeek, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffquery:", err)
	os.Exit(1)
}
