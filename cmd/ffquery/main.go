// Command ffquery runs one approximate SQL query against a synthesized
// Flights table (registered as "flights") and prints per-group
// confidence intervals, alongside the exact answer for comparison:
//
//	ffquery "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 10%"
//	ffquery "SELECT AVG(DepDelay) FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 8"
//	ffquery -bounder hoeffding "SELECT AVG(DepDelay) FROM flights GROUP BY Origin ORDER BY AVG(DepDelay) DESC LIMIT 3"
//	ffquery -timeout 500ms "SELECT COUNT(*) FROM flights WHERE DepTime > 1800 WITHIN 20%"
//	ffquery -stream "SELECT AVG(DepDelay) FROM flights GROUP BY DayOfWeek WITHIN 2%"
//
// With -stream the query runs as a pull-based cursor and every
// interval-recomputation round prints a progress line, so the
// intervals can be watched tightening until the stopping rule fires —
// the paper's interactive online-aggregation loop.
//
// The supported grammar (see the Engine documentation for details):
//
//	SELECT AVG(expr) | SUM(expr) | COUNT(*)
//	FROM flights
//	[WHERE pred AND ...]          pred: c = 'v' | c IN ('a','b') |
//	                                    c > x | c >= x | c < x | c <= x |
//	                                    c BETWEEN lo AND hi
//	[GROUP BY col, ...]
//	[HAVING AGG(c) > v | < v]     stop: threshold decided per group
//	[ORDER BY AGG(c) [DESC] [LIMIT k]]   stop: top-/bottom-k or full order
//	[WITHIN p% | WITHIN ABS e | EXACT]   stop: CI width target / full scan
//	[PARALLEL n]                  hint: scan workers (results identical)
//
// Star/snowflake joins: load dimension tables from CSV with the
// repeatable -dim flag and query the join view,
//
//	ffquery -dim airports=airports.csv:Origin \
//	    "SELECT AVG(DepDelay) FROM flights JOIN airports ON flights.Origin = airports.key WHERE airports.region = 'west' WITHIN 5%"
//
// where the spec name=path:key registers the CSV at path as dimension
// "name" (the CSV column headed "key" holds the dimension keys, every
// other column becomes a string attribute) and attaches it to the fact
// column of the same name — here flights.Origin. Dimension predicates
// (dim.attr = / != / IN) compile to fact-side IN key sets, so all
// interval guarantees and block pruning carry over to the join view.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fastframe"
)

// dimFlag collects repeatable -dim name=path:key specs.
type dimFlag []string

func (d *dimFlag) String() string     { return strings.Join(*d, ",") }
func (d *dimFlag) Set(v string) error { *d = append(*d, v); return nil }

// parseDimSpec splits "name=path:key" (the path may itself contain
// ':'; the key is everything after the last one).
func parseDimSpec(spec string) (name, path, key string, err error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", "", "", fmt.Errorf("-dim %q: want name=path:key", spec)
	}
	i := strings.LastIndex(rest, ":")
	if i <= 0 || i == len(rest)-1 {
		return "", "", "", fmt.Errorf("-dim %q: want name=path:key", spec)
	}
	return name, rest[:i], rest[i+1:], nil
}

// loadDims registers each -dim spec's CSV as a dimension and attaches
// it to the fact column named by the spec's key.
func loadDims(eng *fastframe.Engine, factTable string, specs []string) error {
	for _, spec := range specs {
		name, path, key, err := parseDimSpec(spec)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		d, err := fastframe.LoadDimensionCSV(name, key, f)
		f.Close()
		if err != nil {
			return err
		}
		if err := eng.RegisterDimension(name, d); err != nil {
			return err
		}
		if err := eng.AttachDimension(factTable, key, name); err != nil {
			return err
		}
		fmt.Printf("dimension %s: %d rows (keyed by %s.%s)\n", name, d.NumRows(), factTable, key)
	}
	return nil
}

func main() {
	var (
		rows     = flag.Int("rows", 500_000, "synthesized Flights rows")
		seed     = flag.Uint64("seed", 42, "dataset seed and scan starting position")
		bounder  = flag.String("bounder", "bernstein+rt", "hoeffding|hoeffding+rt|bernstein|bernstein+rt|anderson")
		strategy = flag.String("strategy", "active-peek", "scan|active-sync|active-peek")
		delta    = flag.Float64("delta", 0, "per-query error probability (default 1e-15)")
		timeout  = flag.Duration("timeout", 0, "cancel the query after this long (0 = no limit)")
		exact    = flag.Bool("exact", true, "also compute the exact answer for comparison")
		stream   = flag.Bool("stream", false, "stream per-round interval snapshots while the query runs")
		parallel = flag.Int("parallel", 0, "scan workers; 0 = one per CPU, 1 = sequential (results are identical across counts; a PARALLEL n clause in the query overrides this flag's default only)")
		dims     dimFlag
	)
	flag.Var(&dims, "dim", "dimension CSV as name=path:key — register the CSV at path as dimension name (key column header = key), attached to the fact column of the same name; repeatable")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ffquery [flags] \"SELECT ...\"\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	sqlText := flag.Arg(0)

	b, err := pickBounder(*bounder)
	if err != nil {
		fatal(err)
	}
	st, err := pickStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	eng := fastframe.NewEngine()
	// Fail fast on syntax errors and bad -dim specs before the (slower)
	// data generation; the full plan — including compiled join key
	// sets, which need the table registered — prints afterwards.
	if _, err := eng.Explain(sqlText); err != nil {
		fatal(err)
	}
	if err := loadDims(eng, "flights", dims); err != nil {
		fatal(err)
	}

	fmt.Printf("generating %d flights rows (seed %d)...\n", *rows, *seed)
	tab, err := fastframe.GenerateFlights(*rows, *seed)
	if err != nil {
		fatal(err)
	}
	if err := eng.Register("flights", tab); err != nil {
		fatal(err)
	}
	if plan, err := eng.Explain(sqlText); err != nil {
		fatal(err)
	} else {
		fmt.Printf("plan: %s\n", plan)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []fastframe.Option{
		fastframe.WithBounder(b),
		fastframe.WithStrategy(st),
		fastframe.WithSeed(*seed),
	}
	if *delta > 0 {
		opts = append(opts, fastframe.WithDelta(*delta))
	}
	if *parallel > 0 {
		opts = append(opts, fastframe.WithParallelism(*parallel))
	}
	var res *fastframe.Result
	if *stream {
		res, err = streamQuery(ctx, eng, sqlText, opts)
	} else {
		res, err = eng.Query(ctx, sqlText, opts...)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\napprox: %.3fs, %d blocks fetched, %d rows covered, %d rounds, stopped=%v exhausted=%v aborted=%v\n",
		res.Duration.Seconds(), res.BlocksFetched, res.RowsCovered, res.Rounds, res.Stopped, res.Exhausted, res.Aborted)

	var ex *fastframe.ExactResult
	if *exact {
		// The ground-truth comparison deliberately ignores -timeout:
		// it exists to judge the approximate answer. Use -exact=false
		// to skip it. It honors -parallel (and any PARALLEL hint in
		// the query text).
		ex, err = eng.QueryExact(context.Background(), sqlText, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact:  %.3fs (speedup %.1fx)\n",
			ex.Duration.Seconds(), ex.Duration.Seconds()/res.Duration.Seconds())
	}

	fmt.Printf("\n%-12s %12s %12s %12s %10s %12s\n", "group", "lo", "estimate", "hi", "samples", "exact")
	for _, g := range res.Groups {
		iv := g.Answer(res.Agg)
		truth := "-"
		if ex != nil {
			if e := ex.Group(g.Key); e != nil {
				truth = fmt.Sprintf("%.4f", e.Value(res.Agg))
			}
		}
		key := g.Key
		if key == "" {
			key = "(all)"
		}
		fmt.Printf("%-12s %12.4f %12.4f %12.4f %10d %12s\n", key, iv.Lo, iv.Estimate, iv.Hi, g.Samples, truth)
	}
}

// streamQuery runs the query through the prepared-statement streaming
// cursor, printing one line per interval-recomputation round.
func streamQuery(ctx context.Context, eng *fastframe.Engine, sqlText string, opts []fastframe.Option) (*fastframe.Result, error) {
	stmt, err := eng.Prepare(sqlText, opts...)
	if err != nil {
		return nil, err
	}
	rows, err := stmt.Stream(ctx)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	for p := range rows.Rounds() {
		// Track the interval that carries the query's guarantee (the
		// one its stopping rule watches), not always the AVG view.
		widest := 0.0
		for _, g := range p.Groups {
			if w := g.Answer(p.Agg).Width(); w > widest {
				widest = w
			}
		}
		fmt.Printf("round %3d: %9d rows, %7d blocks, %3d active groups, widest %s CI %.4f\n",
			p.Round, p.RowsCovered, p.BlocksFetched, p.ActiveGroups, p.Agg, widest)
	}
	return rows.Final()
}

func pickBounder(name string) (fastframe.Bounder, error) {
	switch name {
	case "hoeffding":
		return fastframe.Hoeffding, nil
	case "hoeffding+rt":
		return fastframe.HoeffdingRT, nil
	case "bernstein":
		return fastframe.Bernstein, nil
	case "bernstein+rt":
		return fastframe.BernsteinRT, nil
	case "anderson":
		return fastframe.Anderson, nil
	default:
		return 0, fmt.Errorf("unknown bounder %q", name)
	}
}

func pickStrategy(name string) (fastframe.Strategy, error) {
	switch name {
	case "scan":
		return fastframe.ScanStrategy, nil
	case "active-sync":
		return fastframe.ActiveSyncStrategy, nil
	case "active-peek":
		return fastframe.ActivePeekStrategy, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffquery:", err)
	os.Exit(1)
}
