// Command ffquery runs one approximate SQL query against a synthesized
// Flights table (registered as "flights") and prints per-group
// confidence intervals, alongside the exact answer for comparison:
//
//	ffquery "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 10%"
//	ffquery "SELECT AVG(DepDelay) FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 8"
//	ffquery -bounder hoeffding "SELECT AVG(DepDelay) FROM flights GROUP BY Origin ORDER BY AVG(DepDelay) DESC LIMIT 3"
//	ffquery -timeout 500ms "SELECT COUNT(*) FROM flights WHERE DepTime > 1800 WITHIN 20%"
//	ffquery -stream "SELECT AVG(DepDelay) FROM flights GROUP BY DayOfWeek WITHIN 2%"
//
// With -stream the query runs as a pull-based cursor and every
// interval-recomputation round prints a progress line, so the
// intervals can be watched tightening until the stopping rule fires —
// the paper's interactive online-aggregation loop.
//
// With -url the query is not run locally at all: it is POSTed to a
// running ffserved daemon (-token supplies the tenant's bearer token)
// and the response — one-shot /v1/query, or /v1/stream per-round lines
// with -stream — renders exactly like local mode; -exact additionally
// requests the server's exact answer for the comparison column:
//
//	ffquery -url http://localhost:8080 -token s3cret \
//	    "SELECT AVG(DepDelay) FROM flights GROUP BY Airline WITHIN 5%"
//	ffquery -url http://localhost:8080 -stream "SELECT COUNT(*) FROM flights WITHIN 10%"
//
// The supported grammar (see the Engine documentation for details):
//
//	SELECT agg [, agg ...]        agg: AVG(expr) | SUM(expr) | COUNT(*) |
//	                                   MEDIAN(expr) | PERCENTILE(expr, p) |
//	                                   VAR(expr) | STDDEV(expr) |
//	                                   COUNT(DISTINCT col)
//	FROM flights
//	[WHERE pred AND ...]          pred: c = 'v' | c IN ('a','b') |
//	                                    c > x | c >= x | c < x | c <= x |
//	                                    c BETWEEN lo AND hi
//	[GROUP BY col, ...]
//	[HAVING AGG(c) > v | < v]     stop: threshold decided per group
//	[ORDER BY AGG(c) [DESC] [LIMIT k]]   stop: top-/bottom-k or full order
//	[WITHIN p% | WITHIN ABS e | EXACT]   stop: CI width target / full scan
//	[PARALLEL n]                  hint: scan workers (results identical)
//
// Star/snowflake joins: load dimension tables from CSV with the
// repeatable -dim flag and query the join view,
//
//	ffquery -dim airports=airports.csv:Origin \
//	    "SELECT AVG(DepDelay) FROM flights JOIN airports ON flights.Origin = airports.key WHERE airports.region = 'west' WITHIN 5%"
//
// where the spec name=path:key registers the CSV at path as dimension
// "name" (the CSV column headed "key" holds the dimension keys, every
// other column becomes a string attribute) and attaches it to the fact
// column of the same name — here flights.Origin. Dimension predicates
// (dim.attr = / != / IN) compile to fact-side IN key sets, so all
// interval guarantees and block pruning carry over to the join view.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fastframe"
	"fastframe/internal/cliload"
)

func main() {
	var (
		rows     = flag.Int("rows", 500_000, "synthesized Flights rows (local mode)")
		seed     = flag.Uint64("seed", 42, "dataset seed and scan starting position (local mode)")
		bounder  = flag.String("bounder", "bernstein+rt", "hoeffding|hoeffding+rt|bernstein|bernstein+rt|anderson (local mode)")
		strategy = flag.String("strategy", "active-peek", "scan|active-sync|active-peek (local mode)")
		delta    = flag.Float64("delta", 0, "per-query error probability (default 1e-15; local mode)")
		timeout  = flag.Duration("timeout", 0, "cancel the query after this long (0 = no limit)")
		exact    = flag.Bool("exact", true, "also compute the exact answer for comparison")
		stream   = flag.Bool("stream", false, "stream per-round interval snapshots while the query runs")
		parallel = flag.Int("parallel", 0, "scan workers; 0 = one per CPU, 1 = sequential (results are identical across counts; a PARALLEL n clause in the query overrides this flag's default only; local mode)")
		url      = flag.String("url", "", "client mode: POST the query to the ffserved daemon at this base URL instead of running locally")
		token    = flag.String("token", "", "client mode: tenant bearer token for -url")
		dims     cliload.Specs
	)
	flag.Var(&dims, "dim", "dimension CSV as name=path:key — register the CSV at path as dimension name (key column header = key), attached to the fact column of the same name; repeatable (local mode)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ffquery [flags] \"SELECT ...\"\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	sqlText := flag.Arg(0)

	// -timeout bounds query execution only, so its clock starts when
	// the query does — after data generation in local mode.
	queryCtx := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}

	if *url != "" {
		ctx, cancel := queryCtx()
		defer cancel()
		cl := &client{base: *url, token: *token}
		if err := cl.run(ctx, sqlText, *stream, *exact); err != nil {
			fatal(err)
		}
		return
	}

	b, err := pickBounder(*bounder)
	if err != nil {
		fatal(err)
	}
	st, err := pickStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	eng := fastframe.NewEngine()
	// Fail fast on syntax errors and bad -dim specs before the (slower)
	// data generation; the full plan — including compiled join key
	// sets, which need the table registered — prints afterwards.
	if _, err := eng.Explain(sqlText); err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if err := cliload.LoadDims(eng, []string{"flights"}, dims, logf); err != nil {
		fatal(err)
	}

	fmt.Printf("generating %d flights rows (seed %d)...\n", *rows, *seed)
	tab, err := fastframe.GenerateFlights(*rows, *seed)
	if err != nil {
		fatal(err)
	}
	if err := eng.Register("flights", tab); err != nil {
		fatal(err)
	}
	if plan, err := eng.Explain(sqlText); err != nil {
		fatal(err)
	} else {
		fmt.Printf("plan: %s\n", plan)
	}

	opts := []fastframe.Option{
		fastframe.WithBounder(b),
		fastframe.WithStrategy(st),
		fastframe.WithSeed(*seed),
	}
	if *delta > 0 {
		opts = append(opts, fastframe.WithDelta(*delta))
	}
	if *parallel > 0 {
		opts = append(opts, fastframe.WithParallelism(*parallel))
	}
	ctx, cancel := queryCtx()
	defer cancel()
	var res *fastframe.Result
	if *stream {
		res, err = streamQuery(ctx, eng, sqlText, opts)
	} else {
		res, err = eng.Query(ctx, sqlText, opts...)
	}
	if err != nil {
		fatal(err)
	}

	var ex *fastframe.ExactResult
	if *exact {
		// The ground-truth comparison deliberately ignores -timeout:
		// it exists to judge the approximate answer. Use -exact=false
		// to skip it. It honors -parallel (and any PARALLEL hint in
		// the query text).
		ex, err = eng.QueryExact(context.Background(), sqlText, opts...)
		if err != nil {
			fatal(err)
		}
	}
	printResult(res, ex)
}

// printResult renders the approximate result (and the optional exact
// comparison) — shared by local and client mode, so the two render
// identically. Multi-aggregate SELECT lists print one table section per
// aggregate, in list order.
func printResult(res *fastframe.Result, ex *fastframe.ExactResult) {
	fmt.Printf("\napprox: %.3fs, %d blocks fetched, %d rows covered, %d rounds, stopped=%v exhausted=%v aborted=%v\n",
		res.Duration.Seconds(), res.BlocksFetched, res.RowsCovered, res.Rounds, res.Stopped, res.Exhausted, res.Aborted)
	if ex != nil {
		fmt.Printf("exact:  %.3fs (speedup %.1fx)\n",
			ex.Duration.Seconds(), ex.Duration.Seconds()/res.Duration.Seconds())
	}

	aggs := res.Aggs
	if len(aggs) == 0 {
		aggs = []fastframe.Agg{res.Agg}
	}
	for k, a := range aggs {
		if len(aggs) > 1 {
			fmt.Printf("\n-- %s --", a)
		}
		fmt.Printf("\n%-12s %12s %12s %12s %10s %12s\n", "group", "lo", "estimate", "hi", "samples", "exact")
		for _, g := range res.Groups {
			iv := answerAt(g, res.Agg, k)
			truth := "-"
			if ex != nil {
				if e := ex.Group(g.Key); e != nil {
					if k < len(e.Stats) {
						truth = fmt.Sprintf("%.4f", e.Stats[k])
					} else {
						truth = fmt.Sprintf("%.4f", e.Value(res.Agg))
					}
				}
			}
			key := g.Key
			if key == "" {
				key = "(all)"
			}
			fmt.Printf("%-12s %12.4f %12.4f %12.4f %10d %12s\n", key, iv.Lo, iv.Estimate, iv.Hi, g.Samples, truth)
		}
	}
}

// answerAt picks the k-th SELECT-list interval, falling back to the
// legacy triple for payloads that predate per-aggregate answers.
func answerAt(g fastframe.GroupResult, legacy fastframe.Agg, k int) fastframe.Interval {
	if k < len(g.Answers) {
		return g.Answers[k]
	}
	return g.Answer(legacy)
}

// printProgress renders one per-round streaming line — shared by local
// and client mode. A multi-aggregate query prints one interval line per
// SELECT-list aggregate under the round header, so each statistic's
// convergence can be watched independently.
func printProgress(p fastframe.Progress) {
	widestAt := func(k int) float64 {
		widest := 0.0
		for _, g := range p.Groups {
			if w := answerAt(g, p.Agg, k).Width(); w > widest {
				widest = w
			}
		}
		return widest
	}
	if len(p.Aggs) <= 1 {
		// Track the interval that carries the query's guarantee (the
		// one its stopping rule watches), not always the AVG view.
		fmt.Printf("round %3d: %9d rows, %7d blocks, %3d active groups, widest %s CI %.4f\n",
			p.Round, p.RowsCovered, p.BlocksFetched, p.ActiveGroups, p.Agg, widestAt(0))
		return
	}
	fmt.Printf("round %3d: %9d rows, %7d blocks, %3d active groups\n",
		p.Round, p.RowsCovered, p.BlocksFetched, p.ActiveGroups)
	for k, a := range p.Aggs {
		fmt.Printf("  [%d] %-16s widest CI %.4f\n", k+1, a, widestAt(k))
	}
}

// streamQuery runs the query through the prepared-statement streaming
// cursor, printing one line per interval-recomputation round.
func streamQuery(ctx context.Context, eng *fastframe.Engine, sqlText string, opts []fastframe.Option) (*fastframe.Result, error) {
	stmt, err := eng.Prepare(sqlText, opts...)
	if err != nil {
		return nil, err
	}
	rows, err := stmt.Stream(ctx)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	for p := range rows.Rounds() {
		printProgress(p)
	}
	return rows.Final()
}

func pickBounder(name string) (fastframe.Bounder, error) {
	switch name {
	case "hoeffding":
		return fastframe.Hoeffding, nil
	case "hoeffding+rt":
		return fastframe.HoeffdingRT, nil
	case "bernstein":
		return fastframe.Bernstein, nil
	case "bernstein+rt":
		return fastframe.BernsteinRT, nil
	case "anderson":
		return fastframe.Anderson, nil
	default:
		return 0, fmt.Errorf("unknown bounder %q", name)
	}
}

func pickStrategy(name string) (fastframe.Strategy, error) {
	switch name {
	case "scan":
		return fastframe.ScanStrategy, nil
	case "active-sync":
		return fastframe.ActiveSyncStrategy, nil
	case "active-peek":
		return fastframe.ActivePeekStrategy, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffquery:", err)
	os.Exit(1)
}
