package main

import (
	"testing"

	"fastframe/internal/exec"
	"fastframe/internal/query"
)

func TestBuildQuery(t *testing.T) {
	q, err := buildQuery("avg", "DepDelay", "Origin=ORD,Airline=AA", "DepTime=1300",
		"DayOfWeek", 0, 0, "", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.Kind != query.Avg || q.Agg.Column != "DepDelay" {
		t.Errorf("agg = %+v", q.Agg)
	}
	if len(q.Pred.CatEq) != 2 || q.Pred.CatEq[1].Value != "AA" {
		t.Errorf("cat predicates = %+v", q.Pred.CatEq)
	}
	if len(q.Pred.Ranges) != 1 || q.Pred.Ranges[0].Lo <= 1300 {
		t.Errorf("range predicates = %+v", q.Pred.Ranges)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "DayOfWeek" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.Stop.Kind != query.StopExhaust {
		t.Errorf("default stop = %v", q.Stop.Kind)
	}
}

func TestBuildQueryStops(t *testing.T) {
	cases := []struct {
		rel, abs      float64
		threshold     string
		topk, bottomk int
		ordered       bool
		want          query.StopKind
	}{
		{rel: 0.1, want: query.StopRelWidth},
		{abs: 2, want: query.StopAbsWidth},
		{threshold: "7.5", want: query.StopThreshold},
		{topk: 3, want: query.StopTopK},
		{bottomk: 2, want: query.StopTopK},
		{ordered: true, want: query.StopOrdered},
	}
	for i, c := range cases {
		group := ""
		if c.topk > 0 || c.bottomk > 0 || c.ordered {
			group = "Airline"
		}
		q, err := buildQuery("avg", "DepDelay", "", "", group,
			c.rel, c.abs, c.threshold, c.topk, c.bottomk, c.ordered)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if q.Stop.Kind != c.want {
			t.Errorf("case %d: stop = %v, want %v", i, q.Stop.Kind, c.want)
		}
	}
	if q, _ := buildQuery("avg", "x", "", "", "g", 0, 0, "", 0, 2, false); q.Stop.Largest {
		t.Error("bottomk should not be Largest")
	}
}

func TestBuildQueryErrors(t *testing.T) {
	if _, err := buildQuery("median", "x", "", "", "", 0, 0, "", 0, 0, false); err == nil {
		t.Error("unknown aggregate accepted")
	}
	if _, err := buildQuery("avg", "x", "badclause", "", "", 0, 0, "", 0, 0, false); err == nil {
		t.Error("malformed -where accepted")
	}
	if _, err := buildQuery("avg", "x", "", "badclause", "", 0, 0, "", 0, 0, false); err == nil {
		t.Error("malformed -wheregt accepted")
	}
	if _, err := buildQuery("avg", "x", "", "DepTime=abc", "", 0, 0, "", 0, 0, false); err == nil {
		t.Error("non-numeric -wheregt accepted")
	}
	if _, err := buildQuery("avg", "x", "", "", "", 0, 0, "xyz", 0, 0, false); err == nil {
		t.Error("non-numeric -threshold accepted")
	}
	if _, err := buildQuery("avg", "", "", "", "", 0.1, 0, "", 0, 0, false); err == nil {
		t.Error("missing column accepted")
	}
}

func TestPickBounder(t *testing.T) {
	for _, name := range []string{"hoeffding", "hoeffding+rt", "bernstein", "bernstein+rt", "anderson"} {
		if _, err := pickBounder(name); err != nil {
			t.Errorf("pickBounder(%q): %v", name, err)
		}
	}
	if _, err := pickBounder("magic"); err == nil {
		t.Error("unknown bounder accepted")
	}
}

func TestPickStrategy(t *testing.T) {
	cases := map[string]exec.Strategy{
		"scan": exec.Scan, "active-sync": exec.ActiveSync, "active-peek": exec.ActivePeek,
	}
	for name, want := range cases {
		got, err := pickStrategy(name)
		if err != nil || got != want {
			t.Errorf("pickStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := pickStrategy("teleport"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCountAggregateNeedsNoColumn(t *testing.T) {
	q, err := buildQuery("count", "", "", "", "", 0.5, 0, "", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg.Kind != query.Count {
		t.Errorf("agg = %v", q.Agg.Kind)
	}
}
