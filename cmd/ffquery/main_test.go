package main

import (
	"os"
	"path/filepath"
	"testing"

	"fastframe"
)

func TestParseDimSpec(t *testing.T) {
	name, path, key, err := parseDimSpec("airports=data/airports.csv:Origin")
	if err != nil || name != "airports" || path != "data/airports.csv" || key != "Origin" {
		t.Errorf("parseDimSpec = %q %q %q %v", name, path, key, err)
	}
	// A path containing ':' splits on the last one.
	_, path, key, err = parseDimSpec("d=C:/tmp/d.csv:fk")
	if err != nil || path != "C:/tmp/d.csv" || key != "fk" {
		t.Errorf("colon path: %q %q %v", path, key, err)
	}
	for _, bad := range []string{"", "noequals", "=x:y", "a=pathonly", "a=path:", "a=:key"} {
		if _, _, _, err := parseDimSpec(bad); err == nil {
			t.Errorf("parseDimSpec(%q) accepted", bad)
		}
	}
}

func TestLoadDims(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "airports.csv")
	if err := os.WriteFile(csvPath, []byte("Origin,region\nORD,midwest\nLAX,west\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := fastframe.GenerateFlights(5_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := fastframe.NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	if err := loadDims(eng, "flights", []string{"airports=" + csvPath + ":Origin"}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Dimensions(); len(got) != 1 || got[0] != "airports" {
		t.Errorf("Dimensions = %v", got)
	}
	if err := loadDims(eng, "flights", []string{"bad=" + filepath.Join(dir, "missing.csv") + ":Origin"}); err == nil {
		t.Error("missing CSV accepted")
	}
}

func TestPickBounder(t *testing.T) {
	cases := map[string]fastframe.Bounder{
		"hoeffding":    fastframe.Hoeffding,
		"hoeffding+rt": fastframe.HoeffdingRT,
		"bernstein":    fastframe.Bernstein,
		"bernstein+rt": fastframe.BernsteinRT,
		"anderson":     fastframe.Anderson,
	}
	for name, want := range cases {
		got, err := pickBounder(name)
		if err != nil || got != want {
			t.Errorf("pickBounder(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := pickBounder("magic"); err == nil {
		t.Error("unknown bounder accepted")
	}
}

func TestPickStrategy(t *testing.T) {
	cases := map[string]fastframe.Strategy{
		"scan":        fastframe.ScanStrategy,
		"active-sync": fastframe.ActiveSyncStrategy,
		"active-peek": fastframe.ActivePeekStrategy,
	}
	for name, want := range cases {
		got, err := pickStrategy(name)
		if err != nil || got != want {
			t.Errorf("pickStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := pickStrategy("teleport"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
