package main

import (
	"testing"

	"fastframe"
)

// Dim-spec parsing and loading are covered in internal/cliload, the
// shared helper ffquery and ffserved both use.

func TestPickBounder(t *testing.T) {
	cases := map[string]fastframe.Bounder{
		"hoeffding":    fastframe.Hoeffding,
		"hoeffding+rt": fastframe.HoeffdingRT,
		"bernstein":    fastframe.Bernstein,
		"bernstein+rt": fastframe.BernsteinRT,
		"anderson":     fastframe.Anderson,
	}
	for name, want := range cases {
		got, err := pickBounder(name)
		if err != nil || got != want {
			t.Errorf("pickBounder(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := pickBounder("magic"); err == nil {
		t.Error("unknown bounder accepted")
	}
}

func TestPickStrategy(t *testing.T) {
	cases := map[string]fastframe.Strategy{
		"scan":        fastframe.ScanStrategy,
		"active-sync": fastframe.ActiveSyncStrategy,
		"active-peek": fastframe.ActivePeekStrategy,
	}
	for name, want := range cases {
		got, err := pickStrategy(name)
		if err != nil || got != want {
			t.Errorf("pickStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := pickStrategy("teleport"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
