package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"fastframe"
	"fastframe/internal/serve"
)

// client POSTs queries to a running ffserved daemon and renders the
// responses exactly like local mode.
type client struct {
	base  string // daemon base URL, e.g. http://localhost:8080
	token string // tenant bearer token, "" for the anonymous tenant
	http  http.Client
}

// run executes one query remotely: plan first (like local mode), then
// the one-shot or streamed query, then the optional exact comparison.
func (c *client) run(ctx context.Context, sqlText string, stream, exact bool) error {
	if plan, err := c.explain(ctx, sqlText); err != nil {
		return err
	} else {
		fmt.Printf("plan: %s\n", plan)
	}

	var res *fastframe.Result
	var err error
	if stream {
		res, err = c.stream(ctx, sqlText)
	} else {
		res, err = c.query(ctx, sqlText)
	}
	if err != nil {
		return err
	}

	var ex *fastframe.ExactResult
	if exact {
		// The server runs the exact scan too (δ-free), so the remote
		// rendering keeps the ground-truth comparison column.
		if ex, err = c.queryExact(ctx, sqlText); err != nil {
			return err
		}
	}
	printResult(res, ex)
	return nil
}

// do POSTs one JSON request and decodes a JSON response, mapping
// structured error bodies onto readable errors.
func (c *client) do(ctx context.Context, path string, reqBody, respBody any) error {
	resp, err := c.post(ctx, path, reqBody)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(respBody)
}

func (c *client) post(ctx context.Context, path string, reqBody any) (*http.Response, error) {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(c.base, "/")+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.http.Do(req)
}

// explain fetches the logical plan.
func (c *client) explain(ctx context.Context, sqlText string) (string, error) {
	u := strings.TrimSuffix(c.base, "/") + "/v1/explain?sql=" + url.QueryEscape(sqlText)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	var body serve.ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	return body.Plan, nil
}

// query runs one one-shot approximate query.
func (c *client) query(ctx context.Context, sqlText string) (*fastframe.Result, error) {
	var resp serve.QueryResponse
	if err := c.do(ctx, "/v1/query", serve.QueryRequest{SQL: sqlText}, &resp); err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("server response carries no result")
	}
	return resp.Result.ToResult()
}

// queryExact runs the exact evaluation server-side.
func (c *client) queryExact(ctx context.Context, sqlText string) (*fastframe.ExactResult, error) {
	var resp serve.QueryResponse
	if err := c.do(ctx, "/v1/query", serve.QueryRequest{SQL: sqlText, Exact: true}, &resp); err != nil {
		return nil, err
	}
	if resp.Exact == nil {
		return nil, fmt.Errorf("server response carries no exact result")
	}
	return resp.Exact.ToExactResult()
}

// stream runs the query over /v1/stream, printing one line per round
// as the NDJSON lines arrive, and returns the terminal result.
func (c *client) stream(ctx context.Context, sqlText string) (*fastframe.Result, error) {
	resp, err := c.post(ctx, "/v1/stream", serve.QueryRequest{SQL: sqlText})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line serve.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("decoding stream line: %w", err)
		}
		switch {
		case line.Progress != nil:
			p, err := line.Progress.ToProgress()
			if err != nil {
				return nil, err
			}
			printProgress(p)
		case line.Result != nil:
			return line.Result.ToResult()
		case line.Error != nil:
			return nil, fmt.Errorf("%s", line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream ended without a terminal result line")
}

// decodeError maps a non-200 response onto an error, preferring the
// structured body.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e serve.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error.Code != "" {
		return fmt.Errorf("%s", &e.Error)
	}
	return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
}
