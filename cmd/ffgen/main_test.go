package main

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"fastframe/internal/exact"
	"fastframe/internal/flights"
	"fastframe/internal/query"
	"fastframe/internal/table"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	tab, err := flights.Generate(flights.Config{Rows: 5_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flights.csv")
	if err := writeCSV(tab, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Reload through the generic CSV path and compare an aggregate.
	schema := table.MustSchema(
		table.ColumnSpec{Name: flights.ColDepDelay, Kind: table.Float},
		table.ColumnSpec{Name: flights.ColOrigin, Kind: table.Categorical},
		table.ColumnSpec{Name: flights.ColAirline, Kind: table.Categorical},
	)
	reloaded, err := table.LoadCSV(f, schema, 25, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.NumRows() != tab.NumRows() {
		t.Fatalf("rows %d vs %d", reloaded.NumRows(), tab.NumRows())
	}
	q := query.Query{
		Agg:     query.Aggregate{Kind: query.Avg, Column: flights.ColDepDelay},
		GroupBy: []string{flights.ColAirline},
		Stop:    query.Exhaust(),
	}
	a, err := exact.Run(tab, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exact.Run(reloaded, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range a.Groups {
		got := b.Group(g.Key)
		if got == nil || got.Count != g.Count {
			t.Errorf("group %s differs after CSV round trip", g.Key)
		}
		// CSV stores 3 decimals; means agree to ~1e-3.
		if diff := got.Avg - g.Avg; diff > 0.01 || diff < -0.01 {
			t.Errorf("group %s avg %v vs %v", g.Key, got.Avg, g.Avg)
		}
	}
}

func TestPrintSummary(t *testing.T) {
	tab, err := flights.Generate(flights.Config{Rows: 2_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := printSummary(tab); err != nil {
		t.Error(err)
	}
}

func TestSortedByAvg(t *testing.T) {
	res := &exact.Result{Groups: []exact.GroupValue{
		{Key: "b", Avg: 5}, {Key: "a", Avg: 1}, {Key: "c", Avg: 3},
	}}
	out := sortedByAvg(res)
	if out[0].Key != "a" || out[1].Key != "c" || out[2].Key != "b" {
		t.Errorf("sorted order wrong: %+v", out)
	}
}
