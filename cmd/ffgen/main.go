// Command ffgen synthesizes the simulated Flights dataset, prints its
// summary statistics (per-airline and per-airport aggregates, the
// ground truth behind the experiment narratives), and optionally writes
// the rows to CSV for inspection with external tools:
//
//	ffgen -rows 100000 -summary
//	ffgen -rows 100000 -csv /tmp/flights.csv
//
// With -table the scrambled table is persisted in the binary format
// (Table.WriteTo), ready to be served by ffserved -table or loaded
// with fastframe.ReadTable — the one-time scramble shuffle then
// amortizes across daemon restarts:
//
//	ffgen -rows 1000000 -table /tmp/flights.ff
//
// With -verify the tool instead checks an existing table file's
// integrity offline — header, footer and (format v4) every segment
// checksum, plus a full decode of every block — and exits nonzero if
// anything is damaged:
//
//	ffgen -verify /tmp/flights.ff
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"fastframe"
	"fastframe/internal/exact"
	"fastframe/internal/flights"
	"fastframe/internal/query"
	"fastframe/internal/table"
)

func main() {
	var (
		rows    = flag.Int("rows", 100_000, "rows to synthesize")
		seed    = flag.Uint64("seed", 42, "generator seed")
		block   = flag.Int("block", 0, "scramble block size in rows (0 = the paper's 25); larger blocks mean fewer, bigger compressed segments in -table output")
		summary = flag.Bool("summary", true, "print aggregate summary")
		csvPath = flag.String("csv", "", "write rows to this CSV file")
		tabPath = flag.String("table", "", "persist the scrambled table (binary format, for ffserved -table / ReadTable)")
		verify  = flag.String("verify", "", "verify this table file's integrity (checksums + full decode) instead of generating; exit 1 on damage")
	)
	flag.Parse()

	if *verify != "" {
		if err := verifyTable(*verify); err != nil {
			fatal(err)
		}
		return
	}

	tab, err := flights.Generate(flights.Config{Rows: *rows, Seed: *seed, BlockSize: *block})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d rows in %d blocks\n", tab.NumRows(), tab.Layout().NumBlocks())
	rb, err := tab.Bounds(flights.ColDepDelay)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("DepDelay catalog bounds: %s\n", rb)

	if *summary {
		if err := printSummary(tab); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeCSV(tab, *csvPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *tabPath != "" {
		if err := writeTable(tab, *tabPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *tabPath)
	}
}

// verifyTable runs the offline integrity check and renders the report.
func verifyTable(path string) error {
	rep, err := fastframe.VerifyTable(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: format v%d, %d rows, %d blocks of %d rows, %d columns\n",
		rep.Path, rep.Version, rep.Rows, rep.NumBlocks, rep.BlockSize, len(rep.Cols))
	for _, c := range rep.Cols {
		if c.BadBlocks == 0 {
			fmt.Printf("  %-12s %d/%d blocks ok\n", c.Name, c.Blocks, c.Blocks)
			continue
		}
		fmt.Printf("  %-12s %d/%d blocks DAMAGED (blocks %v)\n", c.Name, c.BadBlocks, c.Blocks, c.BadBlockIDs)
		for _, e := range c.BadBlockErrors {
			fmt.Printf("    %s\n", e)
		}
	}
	if !rep.OK() {
		return fmt.Errorf("%s: %d damaged blocks", path, rep.BadBlocks)
	}
	fmt.Printf("%s: OK\n", path)
	return nil
}

// writeTable persists the scramble in the binary table format.
func writeTable(tab *table.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if _, err := tab.WriteTo(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printSummary(tab *table.Table) error {
	byAirline, err := exact.Run(tab, query.Query{
		Agg:     query.Aggregate{Kind: query.Avg, Column: flights.ColDepDelay},
		GroupBy: []string{flights.ColAirline},
		Stop:    query.Exhaust(),
	})
	if err != nil {
		return err
	}
	fmt.Println("\nper-airline AVG(DepDelay):")
	for _, g := range sortedByAvg(byAirline) {
		fmt.Printf("  %-4s %9.3f  (n=%d)\n", g.Key, g.Avg, g.Count)
	}

	byOrigin, err := exact.Run(tab, query.Query{
		Agg:     query.Aggregate{Kind: query.Avg, Column: flights.ColDepDelay},
		GroupBy: []string{flights.ColOrigin},
		Stop:    query.Exhaust(),
	})
	if err != nil {
		return err
	}
	fmt.Println("\nper-airport AVG(DepDelay) (sorted; note the negative and")
	fmt.Println("near-zero means driving F-q5 and the near-max cluster driving F-q8):")
	for _, g := range sortedByAvg(byOrigin) {
		sel := float64(g.Count) / float64(tab.NumRows())
		fmt.Printf("  %-4s %9.3f  (n=%-7d sel=%.5f)\n", g.Key, g.Avg, g.Count, sel)
	}
	return nil
}

func sortedByAvg(res *exact.Result) []exact.GroupValue {
	out := append([]exact.GroupValue(nil), res.Groups...)
	sort.Slice(out, func(i, j int) bool { return out[i].Avg < out[j].Avg })
	return out
}

func writeCSV(tab *table.Table, path string) error {
	delay, err := tab.Float(flights.ColDepDelay)
	if err != nil {
		return err
	}
	depTime, err := tab.Float(flights.ColDepTime)
	if err != nil {
		return err
	}
	origin, err := tab.Cat(flights.ColOrigin)
	if err != nil {
		return err
	}
	airline, err := tab.Cat(flights.ColAirline)
	if err != nil {
		return err
	}
	day, err := tab.Cat(flights.ColDayOfWeek)
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	w := csv.NewWriter(bw)
	if err := w.Write([]string{"Origin", "Airline", "DayOfWeek", "DepTime", "DepDelay"}); err != nil {
		return err
	}
	for i := 0; i < tab.NumRows(); i++ {
		rec := []string{
			origin.Value(origin.Codes[i]),
			airline.Value(airline.Codes[i]),
			day.Value(day.Codes[i]),
			strconv.FormatFloat(depTime.Values[i], 'f', 1, 64),
			strconv.FormatFloat(delay.Values[i], 'f', 3, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffgen:", err)
	os.Exit(1)
}
