// Command ffbench regenerates the tables and figures of the paper's
// empirical study (§5) against the simulated Flights workload:
//
//	ffbench -exp table2                 # pathology matrix (Table 2)
//	ffbench -exp table5 -rows 2000000   # bounder ablation (Table 5)
//	ffbench -exp table6                 # sampling strategies (Table 6)
//	ffbench -exp fig6                   # selectivity sweep (Figure 6)
//	ffbench -exp fig7a                  # requested vs achieved rel. err
//	ffbench -exp fig7b                  # HAVING threshold sweep
//	ffbench -exp fig8                   # min departure time sweep
//	ffbench -exp coverage               # asymptotic-vs-SSI miss rates (§1)
//	ffbench -exp all                    # everything
//
// Speedup ratios and blocks-fetched counts reproduce the paper's
// qualitative shapes; absolute times reflect this machine, not the
// paper's testbed (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fastframe/internal/exec"
	"fastframe/internal/experiments"
	"fastframe/internal/table"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table2|table5|table6|fig6|fig7a|fig7b|fig8|coverage|all")
		rows      = flag.Int("rows", 4_000_000, "synthesized Flights rows")
		seed      = flag.Uint64("seed", 42, "dataset and scan seed")
		delta     = flag.Float64("delta", exec.DefaultDelta, "per-query error probability")
		roundRows = flag.Int("round", 40_000, "rows between bound recomputations (paper: 40000)")
		parallel  = flag.Int("parallel", 1, "scan workers per query; 1 = the sequential path the paper's numbers correspond to, 0 = one per CPU (results are identical, only wall time changes)")
	)
	flag.Parse()

	par := *parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	cfg := experiments.Config{
		Rows:        *rows,
		Seed:        *seed,
		Delta:       *delta,
		RoundRows:   *roundRows,
		Strategy:    exec.ActivePeek,
		Parallelism: par,
	}

	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ffbench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiments.Config) error {
	needTable := exp != "table2" && exp != "coverage"
	var tab *table.Table
	if needTable {
		fmt.Printf("generating flights table: rows=%d seed=%d delta=%.0e round=%d\n",
			cfg.Rows, cfg.Seed, cfg.Delta, cfg.RoundRows)
		start := time.Now()
		var err error
		tab, err = experiments.BuildTable(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("generated in %.2fs (%d blocks)\n\n", time.Since(start).Seconds(), tab.Layout().NumBlocks())
	}

	do := func(name string) bool { return exp == name || exp == "all" }

	if do("table2") {
		fmt.Println("== Table 2: error bounder pathologies (measured) ==")
		experiments.WriteTable2(os.Stdout, experiments.Table2())
		fmt.Println()
	}
	if do("table34") {
		fmt.Println("== Tables 3 & 4: dataset and query descriptions ==")
		if err := experiments.WriteTable34(os.Stdout, tab); err != nil {
			return err
		}
		fmt.Println()
	}
	if do("table5") {
		fmt.Println("== Table 5: speedup over Exact per error bounder ==")
		rows, err := experiments.Table5(tab, cfg)
		if err != nil {
			return err
		}
		experiments.WriteTable5(os.Stdout, rows)
		fmt.Println()
	}
	if do("table6") {
		fmt.Println("== Table 6: speedup over Scan per sampling strategy (Bernstein+RT) ==")
		rows, err := experiments.Table6(tab, cfg)
		if err != nil {
			return err
		}
		experiments.WriteTable6(os.Stdout, rows)
		fmt.Println()
	}
	if do("fig6") {
		fmt.Println("== Figure 6: wall time and blocks fetched vs selectivity (F-q1[eps=.5]) ==")
		pts, err := experiments.Fig6(tab, cfg)
		if err != nil {
			return err
		}
		experiments.WriteFig6(os.Stdout, pts)
		fmt.Println()
	}
	if do("fig7a") {
		fmt.Println("== Figure 7(a): requested vs achieved relative error (F-q1[ORD]) ==")
		pts, err := experiments.Fig7a(tab, cfg)
		if err != nil {
			return err
		}
		experiments.WriteFig7a(os.Stdout, pts)
		fmt.Println()
	}
	if do("fig7b") {
		fmt.Println("== Figure 7(b): blocks fetched vs HAVING threshold (F-q2) ==")
		res, err := experiments.Fig7b(tab, cfg)
		if err != nil {
			return err
		}
		experiments.WriteFig7b(os.Stdout, res)
		fmt.Println()
	}
	if do("fig8") {
		fmt.Println("== Figure 8: blocks fetched vs min departure time (F-q3) ==")
		pts, err := experiments.Fig8(tab, cfg)
		if err != nil {
			return err
		}
		experiments.WriteFig8(os.Stdout, pts)
		fmt.Println()
	}
	if do("coverage") {
		fmt.Println("== Coverage study: asymptotic vs SSI interval miss rates (§1 motivation) ==")
		ccfg := experiments.CoverageConfig{Seed: cfg.Seed}
		experiments.WriteCoverage(os.Stdout, experiments.Coverage(ccfg), ccfg)
		fmt.Println()
	}
	switch exp {
	case "table2", "table34", "table5", "table6", "fig6", "fig7a", "fig7b", "fig8", "coverage", "all":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
