package main

import (
	"testing"

	"fastframe/internal/exec"
	"fastframe/internal/experiments"
)

// TestRunAllExperimentsSmall drives every experiment the tool exposes
// at a tiny scale, catching wiring regressions between the CLI and the
// experiments package.
func TestRunAllExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	cfg := experiments.Config{
		Rows:      40_000,
		Seed:      1,
		Delta:     1e-9,
		RoundRows: 4_000,
		Strategy:  exec.ActivePeek,
	}
	for _, exp := range []string{"table2", "table34", "table5", "table6", "fig6", "fig7a", "fig8"} {
		if err := run(exp, cfg); err != nil {
			t.Errorf("run(%q): %v", exp, err)
		}
	}
	// fig7b sweeps 33 thresholds × 4 bounders; keep it but at low rows.
	small := cfg
	small.Rows = 20_000
	if err := run("fig7b", small); err != nil {
		t.Errorf("run(fig7b): %v", err)
	}
	if err := run("nonsense", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}
