// Command benchjson converts `go test -bench` text output on stdin
// into machine-readable JSON on stdout, so CI can record the perf
// trajectory (BENCH_5.json and successors) without scraping logs.
//
//	go test . -run '^$' -bench 'BenchmarkSelectiveScan' -benchmem | benchjson
//
// Output is a JSON object with the benchmark environment (goos, goarch,
// cpu, pkg) and one entry per benchmark line:
//
//	{"env": {"cpu": "..."}, "benchmarks": [
//	  {"name": "BenchmarkSelectiveScan", "iterations": 100,
//	   "metrics": {"ns/op": 1175383, "allocs/op": 20, "blocks/op": 1984}}]}
//
// Non-benchmark lines (PASS, ok, warnings) are ignored; malformed
// metric pairs on a benchmark line are skipped rather than fatal, so a
// new ReportMetric unit never breaks the job.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full document written to stdout.
type Report struct {
	Env        map[string]string `json:"env"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	addEnvMeta(rep.Env)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// addEnvMeta stamps the report with the parallelism the numbers were
// produced under and the commit they belong to — a solo/shared
// concurrency benchmark on a 1-CPU runner means something very
// different than on 16 cores, and trajectory comparisons across
// BENCH_N.json files need both anchors. git_sha is omitted when git or
// the work tree is unavailable (e.g. running from a tarball).
func addEnvMeta(env map[string]string) {
	env["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	env["numcpu"] = strconv.Itoa(runtime.NumCPU())
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			env["git_sha"] = sha
		}
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			rep.Env[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rep, nil
}

// parseBenchLine parses one result line of the standard Go benchmark
// format: name, iteration count, then value–unit pairs.
//
//	BenchmarkX-8  100  12345 ns/op  16 B/op  2 allocs/op  55 blocks/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		// Strip the trailing -GOMAXPROCS suffix for stable names.
		Name:       stripProcs(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// stripProcs removes the "-N" GOMAXPROCS suffix Go appends to benchmark
// names, keeping sub-benchmark paths intact (the suffix is only ever on
// the final path element).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
