package main

import (
	"strconv"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fastframe
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSelectiveScan 	       3	   1175383 ns/op	      1984 blocks/op	   2000000 rows/op	   12402 B/op	      20 allocs/op
BenchmarkParallelScan/P=1-8         	       3	  34459972 ns/op	        58.04 Mrows/s	   2000000 rows/op	   40818 B/op	     383 allocs/op
PASS
ok  	fastframe	2.262s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env["cpu"] == "" || rep.Env["goos"] != "linux" {
		t.Errorf("env not captured: %+v", rep.Env)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSelectiveScan" || b.Iterations != 3 {
		t.Errorf("first bench: %+v", b)
	}
	if b.Metrics["ns/op"] != 1175383 || b.Metrics["blocks/op"] != 1984 || b.Metrics["allocs/op"] != 20 {
		t.Errorf("metrics: %+v", b.Metrics)
	}
	if got := rep.Benchmarks[1].Name; got != "BenchmarkParallelScan/P=1" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got)
	}
	if rep.Benchmarks[1].Metrics["Mrows/s"] != 58.04 {
		t.Errorf("float metric: %+v", rep.Benchmarks[1].Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":      "BenchmarkX",
		"BenchmarkX":        "BenchmarkX",
		"BenchmarkX/P=4-16": "BenchmarkX/P=4",
		"BenchmarkX/sub":    "BenchmarkX/sub",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAddEnvMeta(t *testing.T) {
	env := map[string]string{"cpu": "x"}
	addEnvMeta(env)
	for _, k := range []string{"gomaxprocs", "numcpu"} {
		n, err := strconv.Atoi(env[k])
		if err != nil || n < 1 {
			t.Errorf("env[%q] = %q, want a positive integer", k, env[k])
		}
	}
	// git_sha is best-effort: when present it must look like a commit.
	if sha, ok := env["git_sha"]; ok {
		if len(sha) != 40 {
			t.Errorf("git_sha = %q, want a 40-hex commit", sha)
		}
	}
	if env["cpu"] != "x" {
		t.Error("existing env keys clobbered")
	}
}
