// Command ffserved is the FastFrame query daemon: it loads persisted
// tables once, owns one long-lived Engine, and serves approximate SQL
// over HTTP to many concurrent per-token tenants — the paper's
// interactive online-aggregation loop as a shared service.
//
//	ffgen -rows 1000000 -table flights.ff
//	ffserved -addr :8080 -table flights=flights.ff \
//	    -dim airports=airports.csv:Origin \
//	    -token alice=s3cret,budget=1e-9,rate=10,conc=4 \
//	    -usage-log usage.jsonl
//
// Endpoints (see the internal/serve package for wire formats):
//
//	POST /v1/query    one-shot: {"sql": "...", "args": [...]} → result
//	POST /v1/stream   NDJSON/SSE: one line per round, final result last
//	GET  /v1/explain  ?sql=... → logical plan
//	GET  /v1/stats    usage counters per tenant and global
//	GET  /healthz     liveness (no auth)
//
// Tenants authenticate with "Authorization: Bearer <token>"; each has
// its own session δ budget, token-bucket rate limit and concurrency
// cap (-token spec or -tokens file, one spec per line; with neither, a
// single anonymous unlimited tenant is created). Concurrent queries
// against the same table coalesce onto one cooperative shared scan —
// answers stay byte-identical to solo execution, only the physical
// block reads are shared (disable with -no-shared-scan; see /v1/stats
// shared_scan for the realized sharing factor). On SIGTERM/SIGINT the
// daemon stops admitting, aborts in-flight scans at their next round
// boundary — every streamed response still ends with a valid partial
// interval — flushes the usage log, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fastframe"
	"fastframe/internal/cliload"
	"fastframe/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		tokenFile    = flag.String("tokens", "", "tenant token file (one name=token[,key=val...] spec per line, #-comments)")
		seed         = flag.Uint64("seed", 42, "scan starting-position seed (fixed: answers reproduce across restarts)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query execution cap; expiry yields a valid partial interval (0 = none)")
		maxBody      = flag.Int64("max-body", serve.DefaultMaxBody, "request body cap in bytes")
		noShared     = flag.Bool("no-shared-scan", false, "run each query as its own scan instead of coalescing concurrent queries onto one cooperative scan per table")
		keepAlive    = flag.Duration("stream-keepalive", serve.DefaultStreamKeepAlive, "SSE keepalive comment interval for /v1/stream (negative = none)")
		usageLog     = flag.String("usage-log", "", "append usage records (JSONL) to this file")
		drainWait    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline")
		poolBytes    = flag.Int64("pool-bytes", 0, "open persisted tables out-of-core, paging blocks through a shared buffer pool with this decoded-byte budget (0 = load everything resident)")
		degraded     = flag.Bool("degraded-reads", false, "keep answering past permanently quarantined storage blocks: their rows stay unobserved and are charged at catalog worst case, so intervals remain conservatively valid (responses are marked degraded); default is to fail such queries with a structured storage_error")
		tables       cliload.Specs
		csvTables    cliload.Specs
		dims         cliload.Specs
		tokens       cliload.Specs
	)
	flag.Var(&tables, "table", "persisted table as name=path (written by ffgen -table / Table.WriteTo); repeatable")
	flag.Var(&csvTables, "csv-table", "CSV fact table as name=path#col:kind,... (kind float or cat), streamed and scrambled at startup; repeatable")
	flag.Var(&dims, "dim", "dimension CSV as name=path:key, attached to the fact column named key on every fact table; repeatable")
	flag.Var(&tokens, "token", "tenant spec name=token[,delta=D][,budget=B][,rate=R][,burst=N][,conc=C]; repeatable")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ffserved -table name=path [flags]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if len(tables) == 0 && len(csvTables) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	eng := fastframe.NewEngine()
	var pool *fastframe.BufferPool
	if *poolBytes > 0 {
		pool = fastframe.NewBufferPool(*poolBytes)
	}
	names, err := cliload.LoadTables(eng, tables, pool, log.Printf)
	if err != nil {
		fatal(err)
	}
	csvNames, err := cliload.LoadCSVTables(eng, csvTables, *seed, log.Printf)
	if err != nil {
		fatal(err)
	}
	names = append(names, csvNames...)
	if err := cliload.LoadDims(eng, names, dims, log.Printf); err != nil {
		fatal(err)
	}

	cfg := serve.Config{
		Options:         []fastframe.Option{fastframe.WithSeed(*seed)},
		QueryTimeout:    *queryTimeout,
		MaxBody:         *maxBody,
		NoSharedScan:    *noShared,
		DegradedReads:   *degraded,
		StreamKeepAlive: *keepAlive,
	}
	if cfg.Tenants, err = tenantConfigs(tokens, *tokenFile); err != nil {
		fatal(err)
	}
	if *usageLog != "" {
		f, err := os.OpenFile(*usageLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cfg.UsageLog = f
	}

	srv, err := serve.New(eng, cfg)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("ffserved: listening on %s (%d tables, %d tenants)", *addr, len(names), len(cfg.Tenants))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case s := <-sig:
		log.Printf("ffserved: %v: draining (in-flight scans abort at their next round boundary)", s)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop admitting and cancel in-flight queries first — handlers then
	// finish writing their (valid, partial) final lines — and only then
	// close the listener and wait out the connections.
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ffserved: drain: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ffserved: shutdown: %v", err)
	}
	log.Printf("ffserved: stopped")
}

// tenantConfigs merges -token flags and the -tokens file; with neither
// present a single anonymous unlimited tenant is created (every
// request runs as "anonymous" with the engine's default δ).
func tenantConfigs(specs []string, file string) ([]serve.TenantConfig, error) {
	var out []serve.TenantConfig
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if out, err = serve.ParseTenantFile(f); err != nil {
			return nil, fmt.Errorf("-tokens %s: %w", file, err)
		}
	}
	for _, spec := range specs {
		cfg, err := serve.ParseTenantSpec(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	if len(out) == 0 {
		log.Printf("ffserved: no -token/-tokens given; serving unauthenticated as tenant %q", "anonymous")
		out = []serve.TenantConfig{{Name: "anonymous"}}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffserved:", err)
	os.Exit(1)
}
