package fastframe

import (
	"io"
	"math/rand/v2"
	"sync"

	"fastframe/internal/exec"
	"fastframe/internal/flights"
	"fastframe/internal/table"
)

// ColumnKind classifies a table column.
type ColumnKind int

const (
	// Float is a continuous column; aggregates run over these and the
	// catalog tracks their range bounds.
	Float ColumnKind = iota
	// Categorical is a dictionary-encoded string column; predicates and
	// GROUP BY clauses use these, each backed by a block bitmap index.
	Categorical
)

// Column declares one column of a table schema.
type Column struct {
	Name string
	Kind ColumnKind
}

// Table is an immutable scramble ready for approximate querying. Safe
// for concurrent readers.
type Table struct {
	t *table.Table

	// shared is the table's cooperative scan driver, created lazily by
	// the first WithSharedScan query (see sharedDriver).
	sharedMu sync.Mutex
	shared   *exec.SharedDriver
}

// sharedDriver returns the table's cooperative scan driver, creating
// it on first use. One driver per Table value: queries that opt into
// WithSharedScan against the same Table coalesce onto it.
func (t *Table) sharedDriver() *exec.SharedDriver {
	t.sharedMu.Lock()
	defer t.sharedMu.Unlock()
	if t.shared == nil {
		t.shared = exec.NewSharedDriver(t.t)
	}
	return t.shared
}

// SharedScanStats reports the cumulative effectiveness of cooperative
// scans (WithSharedScan) against one table or an Engine's tables.
type SharedScanStats struct {
	// QueriesServed counts queries completed through shared scans.
	QueriesServed int64
	// BlocksFetched counts physical block reads the cooperative scans
	// performed — each block read once per circulation if at least one
	// attached query wanted it.
	BlocksFetched int64
	// BlocksDemanded counts the solo-equivalent reads: the sum over
	// queries of the blocks each would have fetched running alone. The
	// ratio BlocksDemanded / BlocksFetched is the sharing factor.
	BlocksDemanded int64
}

// SharedScanStats returns the table's cumulative shared-scan counters
// (zero if no query has used WithSharedScan).
func (t *Table) SharedScanStats() SharedScanStats {
	t.sharedMu.Lock()
	d := t.shared
	t.sharedMu.Unlock()
	if d == nil {
		return SharedScanStats{}
	}
	s := d.Stats()
	return SharedScanStats{
		QueriesServed:  s.QueriesServed,
		BlocksFetched:  s.BlocksFetched,
		BlocksDemanded: s.BlocksDemanded,
	}
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int { return t.t.NumRows() }

// NumBlocks returns the number of storage blocks in the scramble.
func (t *Table) NumBlocks() int { return t.t.Layout().NumBlocks() }

// ColumnBounds returns the catalog range bounds [a, b] of a continuous
// column.
func (t *Table) ColumnBounds(name string) (a, b float64, err error) {
	rb, err := t.t.Bounds(name)
	if err != nil {
		return 0, 0, err
	}
	return rb.A, rb.B, nil
}

// CategoricalValues returns the dictionary of a categorical column.
func (t *Table) CategoricalValues(name string) ([]string, error) {
	col, err := t.t.Cat(name)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), col.Dict...), nil
}

// TableBuilder accumulates rows and produces a Table (performing the
// one-time scramble shuffle, dictionary encoding, bitmap indexing and
// catalog bound collection).
type TableBuilder struct {
	b *table.Builder
}

// NewTableBuilder returns a builder over the given schema with the
// paper's 25-row blocks.
func NewTableBuilder(cols ...Column) (*TableBuilder, error) {
	return NewTableBuilderBlockSize(0, cols...)
}

// NewTableBuilderBlockSize is NewTableBuilder with an explicit block
// size (rows per block); blockSize ≤ 0 selects the default of 25.
func NewTableBuilderBlockSize(blockSize int, cols ...Column) (*TableBuilder, error) {
	specs := make([]table.ColumnSpec, len(cols))
	for i, c := range cols {
		kind := table.Float
		if c.Kind == Categorical {
			kind = table.Categorical
		}
		specs[i] = table.ColumnSpec{Name: c.Name, Kind: kind}
	}
	schema, err := table.NewSchema(specs...)
	if err != nil {
		return nil, err
	}
	return &TableBuilder{b: table.NewBuilder(schema, blockSize)}, nil
}

// AppendRow adds one row; every schema column must be present in the
// appropriate map.
func (tb *TableBuilder) AppendRow(floats map[string]float64, cats map[string]string) error {
	return tb.b.Append(table.Row{Floats: floats, Cats: cats})
}

// AppendColumns bulk-adds rows from parallel column slices.
func (tb *TableBuilder) AppendColumns(floats map[string][]float64, cats map[string][]string) error {
	return tb.b.AppendColumns(floats, cats)
}

// WidenBounds forces the catalog bounds of a continuous column to cover
// at least [a, b] (catalog bounds may be wider than the data; the error
// bounders only require [a,b] ⊇ [MIN,MAX]).
func (tb *TableBuilder) WidenBounds(column string, a, b float64) {
	tb.b.WidenBounds(column, a, b)
}

// NumRows returns the rows appended so far.
func (tb *TableBuilder) NumRows() int { return tb.b.NumRows() }

// Build shuffles the rows into a scramble using the seed and returns
// the immutable Table.
func (tb *TableBuilder) Build(seed uint64) (*Table, error) {
	t, err := tb.b.Build(rand.New(rand.NewPCG(seed, 0xf457f7a)))
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// LoadCSV reads a CSV stream with a header row into the builder:
// header names are matched against the schema, continuous columns are
// parsed as floats. Combine with WidenBounds before Build for wider
// a-priori catalog bounds.
func (tb *TableBuilder) LoadCSV(r io.Reader) error {
	return table.LoadCSVInto(tb.b, r)
}

// WriteTo serializes the table (columns, dictionaries, catalog bounds,
// scrambled row order) to a compact binary stream, so the one-time
// scramble shuffle amortizes across process restarts. Load with
// ReadTable; bitmap indexes are rebuilt on load.
func (t *Table) WriteTo(w io.Writer) (int64, error) { return t.t.WriteTo(w) }

// ReadTable deserializes a table written by WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	t, err := table.ReadTable(r)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// GenerateFlights synthesizes the simulated Flights evaluation dataset
// (columns Origin, Airline, DepDelay, DepTime, DayOfWeek) with the
// structural properties of the paper's workload. Identical arguments
// generate identical tables.
func GenerateFlights(rows int, seed uint64) (*Table, error) {
	t, err := flights.Generate(flights.Config{Rows: rows, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}
