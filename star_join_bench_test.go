package fastframe

import (
	"context"
	"testing"
)

// BenchmarkStarJoinScan measures the join-view scan path end to end:
// a prepared SQL JOIN whose dimension predicate compiles, per run,
// into a fact-side IN key set (bind-time resolution included), then
// scans the scramble under that predicate to a 10% relative CI.
func BenchmarkStarJoinScan(b *testing.B) {
	tab := smallFlights(b)
	eng := starEngine(b, tab)
	stmt, err := eng.Prepare("SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region = ? WITHIN 10%")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound, err := stmt.Bind("west")
		if err != nil {
			b.Fatal(err)
		}
		res, err := bound.Query(ctx,
			WithDelta(1e-9), WithRoundRows(20_000), WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 1 {
			b.Fatalf("groups = %d", len(res.Groups))
		}
	}
}
