// Streaming mean estimation without the column store: wrap any
// without-replacement sample stream in a MeanEstimator and stop the
// moment the anytime-valid interval is tight enough. Also demonstrates
// derived range bounds for aggregates over expressions (Appendix B of
// the paper).
//
//	go run ./examples/stream
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"fastframe"
)

func main() {
	// A synthetic "sensor" population: 500k readings concentrated near
	// 42 with occasional spikes, known a priori only to lie in [0, 1000].
	rng := rand.New(rand.NewPCG(5, 5))
	population := make([]float64, 500_000)
	truth := 0.0
	for i := range population {
		v := 42 + rng.NormFloat64()*3
		if rng.Float64() < 0.001 {
			v = 900 + rng.Float64()*100 // rare spike
		}
		if v < 0 {
			v = 0
		}
		population[i] = v
		truth += v
	}
	truth /= float64(len(population))

	est, err := fastframe.NewMeanEstimator(fastframe.EstimatorConfig{
		A: 0, B: 1000,
		N:         len(population),
		Delta:     1e-12,
		Bounder:   fastframe.BernsteinRT,
		BatchRows: 5_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream a random permutation (= sampling without replacement) and
	// stop once the interval is narrower than ±0.5.
	perm := rng.Perm(len(population))
	for _, idx := range perm {
		est.Observe(population[idx])
		if est.Samples()%5_000 == 0 {
			iv := est.Interval()
			fmt.Printf("after %6d samples: mean %v (width %.3f)\n",
				est.Samples(), iv, iv.Width())
			if iv.Width() < 1.0 {
				fmt.Printf("\nstopped at %.1f%% of the population; true mean %.4f contained: %v\n",
					100*float64(est.Samples())/float64(len(population)), truth, iv.Contains(truth))
				break
			}
		}
	}

	// Derived range bounds for an expression aggregate (Appendix B):
	// bounds for (2·c1 + 3·c2 − 1)² from per-column catalog bounds.
	tb, err := fastframe.NewTableBuilder(
		fastframe.Column{Name: "c1", Kind: fastframe.Float},
		fastframe.Column{Name: "c2", Kind: fastframe.Float},
		fastframe.Column{Name: "tag", Kind: fastframe.Categorical},
	)
	if err != nil {
		log.Fatal(err)
	}
	_ = tb.AppendRow(map[string]float64{"c1": 0, "c2": 0}, map[string]string{"tag": "x"})
	tb.WidenBounds("c1", -3, 1)
	tb.WidenBounds("c2", -1, 3)
	tab, err := tb.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	e := fastframe.Const(2).Mul(fastframe.Col("c1")).
		Add(fastframe.Const(3).Mul(fastframe.Col("c2"))).
		Sub(fastframe.Const(1)).
		Square()
	lo, hi, err := tab.DerivedBounds(e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived bounds for %s over c1∈[−3,1], c2∈[−1,3]: [%g, %g]\n", e, lo, hi)
	fmt.Println("(the paper's Example 1: [0, 100])")
}
