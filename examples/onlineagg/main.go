// Online aggregation: watch per-group confidence intervals tighten
// round by round — the paper's §2.1 "explicit use of downstream CIs"
// (the classic online-aggregation interface) — and stop the moment the
// picture is clear enough, via the OnProgress callback. Whenever you
// stop, the intervals on screen are valid (1−δ) CIs.
//
//	go run ./examples/onlineagg
package main

import (
	"fmt"
	"log"
	"strings"

	"fastframe"
)

func main() {
	fmt.Println("generating 2M flights rows...")
	tab, err := fastframe.GenerateFlights(2_000_000, 33)
	if err != nil {
		log.Fatal(err)
	}

	// Average delay per airline, with an (intentionally) unreachable
	// accuracy target: only the viewer decides when to stop.
	q := fastframe.Avg("DepDelay").GroupBy("Airline").StopAtAbsError(0.001)

	opts := fastframe.ExecOptions{
		RoundRows: 100_000, // redraw the "screen" every 100k rows
		OnProgress: func(p fastframe.Progress) bool {
			fmt.Printf("\nround %d — %d rows covered, %d groups still active\n",
				p.Round, p.RowsCovered, p.ActiveGroups)
			for _, g := range p.Groups {
				fmt.Printf("  %-4s %8.2f  %s\n", g.Key, g.Avg.Estimate, bar(g.Avg.Lo, g.Avg.Hi))
			}
			// "I've seen enough": stop once every interval is narrower
			// than ±2 minutes.
			for _, g := range p.Groups {
				if g.Avg.Width() > 4 {
					return true // keep scanning
				}
			}
			return false
		},
	}
	res, err := tab.Run(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstopped by the viewer after %d rounds (%d of %d blocks); aborted=%v\n",
		res.Rounds, res.BlocksFetched, tab.NumBlocks(), res.Aborted)
	fmt.Println("every interval shown above was already a valid 1−δ confidence interval.")
}

// bar renders an interval on a fixed [0, 25] axis.
func bar(lo, hi float64) string {
	const width, maxV = 50, 25.0
	clamp := func(v float64) int {
		p := int(v / maxV * width)
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	l, h := clamp(lo), clamp(hi)
	var sb strings.Builder
	for i := 0; i < width; i++ {
		switch {
		case i >= l && i <= h:
			sb.WriteByte('#')
		default:
			sb.WriteByte('.')
		}
	}
	return sb.String()
}
