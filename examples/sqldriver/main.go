// FastFrame through database/sql: the ffdriver package registers the
// engine as a standard SQL driver, so ordinary database/sql code —
// prepared statements, parameter binding, row scanning — issues
// approximate queries with confidence-interval columns.
//
//	go run ./examples/sqldriver
package main

import (
	"fmt"
	"log"

	"fastframe"
	ffdriver "fastframe/driver"
)

func main() {
	tab, err := fastframe.GenerateFlights(400_000, 3)
	if err != nil {
		log.Fatal(err)
	}
	eng := fastframe.NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		log.Fatal(err)
	}

	// Wrap the engine in a *sql.DB. (Alternatively RegisterEngine +
	// sql.Open("fastframe", name).)
	db := ffdriver.OpenDB(eng)
	defer db.Close()

	// A parameterized GROUP BY through the stdlib interface: one result
	// row per group, with estimate and CI bounds as columns.
	stmt, err := db.Prepare(
		"SELECT AVG(DepDelay) FROM flights WHERE Origin = ? GROUP BY Airline WITHIN ABS ?")
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()

	for _, origin := range []string{"ORD", "LAX"} {
		rows, err := stmt.Query(origin, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mean departure delay by airline out of %s (±0.5 w.h.p.):\n", origin)
		for rows.Next() {
			var (
				airline        string
				est, lo, hi    float64
				samples        int64
				exact, aborted bool
			)
			if err := rows.Scan(&airline, &est, &lo, &hi, &samples, &exact, &aborted); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-3s %8.3f ∈ [%8.3f, %8.3f]  (%d samples, exact=%v)\n",
				airline, est, lo, hi, samples, exact)
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		rows.Close()
	}
}
