// Snowflake-schema join views: attach a dimension table to the fact
// scramble and query through dimension attributes — the paper's
// §Extensibility. The dimension predicate compiles into a fact-side IN
// predicate, so the CI guarantees and block pruning apply unchanged to
// the join view.
//
//	go run ./examples/snowflake
package main

import (
	"fmt"
	"log"

	"fastframe"
)

// airportRegions is a toy dimension: airport → region.
var airportRegions = map[string]string{
	"ORD": "midwest", "DFW": "south", "ATL": "south", "LAX": "west",
	"PHX": "west", "DEN": "west", "DTW": "midwest", "IAH": "south",
	"MSP": "midwest", "SFO": "west", "SEA": "west", "SLC": "west",
	"LAS": "west", "SAN": "west", "PDX": "west", "OAK": "west",
	"SMF": "west", "SJC": "west", "SNA": "west", "BUR": "west",
}

func main() {
	fmt.Println("generating 2M flights rows (fact table)...")
	fact, err := fastframe.GenerateFlights(2_000_000, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Build the airports dimension: every origin gets a region (default
	// "other" for codes not in the toy map).
	origins, err := fact.CategoricalValues("Origin")
	if err != nil {
		log.Fatal(err)
	}
	airports := fastframe.NewDimension("airports")
	for _, code := range origins {
		region := airportRegions[code]
		if region == "" {
			region = "other"
		}
		airports.Add(code, map[string]string{"region": region})
	}

	schema := fastframe.NewStarSchema(fact)
	if err := schema.Attach("Origin", airports); err != nil {
		log.Fatal(err)
	}

	// "Is the average delay of west-region departures above 9 minutes?"
	// — a HAVING-style decision over a join view.
	q := fastframe.Avg("DepDelay").StopWhenThresholdDecided(9).Named("west-delay")
	q, err = schema.WhereDimension(q, "Origin", "region", "west")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", q)

	res, err := schema.Run(q, fastframe.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := schema.RunExact(q)
	if err != nil {
		log.Fatal(err)
	}

	g := res.Groups[0]
	side := "ABOVE 9"
	if g.Avg.Hi < 9 {
		side = "below 9"
	}
	fmt.Printf("join view AVG(DepDelay) = %v → %s\n", g.Avg, side)
	fmt.Printf("exact join answer: %.4f (speedup %.1fx, %d of %d blocks)\n",
		ex.Groups[0].Avg,
		ex.Duration.Seconds()/res.Duration.Seconds(),
		res.BlocksFetched, fact.NumBlocks())
	fmt.Printf("decision correct: %v\n",
		(g.Avg.Lo > 9) == (ex.Groups[0].Avg > 9) || g.Avg.Contains(9))
}
