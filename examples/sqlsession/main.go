// Example sqlsession demonstrates the Engine/Session API: a registry
// of named tables, SQL text queries, a session-level δ error budget,
// and context-based cancellation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fastframe"
)

func main() {
	tab, err := fastframe.GenerateFlights(1_000_000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Budget the whole session: across up to 100 queries, the chance
	// that ANY reported interval misses its true value stays below
	// 1e-12 (each query runs at δ = 1e-14 by union bound).
	eng := fastframe.NewEngine(fastframe.WithSessionBudget(1e-12, 100))
	if err := eng.Register("flights", tab); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// An interactive ad-hoc query: stop once the mean is known to ±5%.
	res, err := eng.Query(ctx,
		"SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%")
	if err != nil {
		log.Fatal(err)
	}
	g := res.Groups[0]
	fmt.Printf("ORD mean delay: %v  (%d rows covered, %.1fms)\n",
		g.Avg, res.RowsCovered, float64(res.Duration.Microseconds())/1000)

	// A HAVING query: stops once every airline is decided above or
	// below the threshold w.h.p.
	res, err = eng.Query(ctx,
		"SELECT AVG(DepDelay) FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("airlines above 12min: %v\n", res.DecidedAbove(12))

	// A deadline-bounded query: whatever intervals exist when the
	// deadline fires are still valid (1−δ) CIs.
	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Millisecond)
	defer cancel()
	res, err = eng.Query(shortCtx,
		"SELECT SUM(DepDelay) FROM flights GROUP BY Origin ORDER BY SUM(DepDelay) DESC LIMIT 3",
		fastframe.WithRoundRows(10_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 scan after 2ms: aborted=%v, %d groups bounded so far\n",
		res.Aborted, len(res.Groups))

	total, perQuery := eng.SessionBudget()
	fmt.Printf("session: %d queries, error ≤ %.2g of budget %.2g (δ=%.2g per query)\n",
		eng.QueriesRun(), eng.SessionError(), total, perQuery)
}
