// HAVING-threshold early stopping: find the airlines whose average
// departure delay exceeds a threshold, reading only as much data as it
// takes to decide each airline's side — the paper's Figure 1 / F-q2
// scenario, where the CIs are consumed by the system rather than shown
// to the user.
//
//	go run ./examples/having
package main

import (
	"fmt"
	"log"

	"fastframe"
)

const threshold = 9.3

func main() {
	fmt.Println("generating 4M flights rows...")
	tab, err := fastframe.GenerateFlights(4_000_000, 7)
	if err != nil {
		log.Fatal(err)
	}

	// SELECT Airline FROM flights GROUP BY Airline
	// HAVING AVG(DepDelay) > 9.3
	q := fastframe.Avg("DepDelay").
		GroupBy("Airline").
		StopWhenThresholdDecided(threshold).
		Named("airlines-above-threshold")

	res, err := tab.Run(q, fastframe.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := tab.RunExact(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndecided after %d of %d blocks (%.1fms; exact scan %.1fms)\n\n",
		res.BlocksFetched, tab.NumBlocks(),
		float64(res.Duration.Microseconds())/1000,
		float64(ex.Duration.Microseconds())/1000)
	fmt.Printf("%-8s %-26s %-8s %s\n", "airline", "CI for AVG(DepDelay)", "side", "exact")
	for _, g := range res.Groups {
		side := "ABOVE"
		if g.Avg.Hi < threshold {
			side = "below"
		}
		fmt.Printf("%-8s [%8.3f, %8.3f]       %-8s %.3f\n",
			g.Key, g.Avg.Lo, g.Avg.Hi, side, ex.Group(g.Key).Avg)
	}
	fmt.Println("\nevery CI excludes the threshold, so the HAVING result set is")
	fmt.Println("correct with probability 1−δ — no subset or superset errors.")
}
