// Top-K separation with bounder ablation: find the airline with the
// worst average delay (the paper's F-q9), and compare how much data
// each error-bounding technique needs before the winner is separated
// from the rest — the paper's core result that distribution-sensitive
// bounds (Bernstein+RangeTrim) terminate far earlier than range-only
// bounds (Hoeffding).
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"

	"fastframe"
)

func main() {
	fmt.Println("generating 4M flights rows...")
	tab, err := fastframe.GenerateFlights(4_000_000, 21)
	if err != nil {
		log.Fatal(err)
	}

	// SELECT Airline FROM flights GROUP BY Airline
	// ORDER BY AVG(DepDelay) DESC LIMIT 1
	q := fastframe.Avg("DepDelay").
		GroupBy("Airline").
		StopWhenTopKSeparated(1).
		Named("worst-airline")

	ex, err := tab.RunExact(q)
	if err != nil {
		log.Fatal(err)
	}
	worst, worstAvg := "", -1e18
	for _, g := range ex.Groups {
		if g.Avg > worstAvg {
			worst, worstAvg = g.Key, g.Avg
		}
	}
	fmt.Printf("ground truth: %s with AVG(DepDelay) = %.3f (exact scan %.1fms)\n\n",
		worst, worstAvg, float64(ex.Duration.Microseconds())/1000)

	fmt.Printf("%-14s %10s %12s %12s %8s\n", "bounder", "blocks", "rows", "ms", "winner")
	for _, b := range []fastframe.Bounder{
		fastframe.Hoeffding,
		fastframe.HoeffdingRT,
		fastframe.Bernstein,
		fastframe.BernsteinRT,
	} {
		res, err := tab.Run(q, fastframe.ExecOptions{Bounder: b})
		if err != nil {
			log.Fatal(err)
		}
		winner, best := "", -1e18
		for _, g := range res.Groups {
			if g.Avg.Estimate > best {
				winner, best = g.Key, g.Avg.Estimate
			}
		}
		mark := winner
		if winner != worst {
			mark += " (WRONG)"
		}
		fmt.Printf("%-14v %10d %12d %12.1f %8s\n",
			b, res.BlocksFetched, res.RowsCovered,
			float64(res.Duration.Microseconds())/1000, mark)
	}
	fmt.Println("\nfewer blocks = earlier termination at identical guarantees (δ=1e−15).")
}
