// Quickstart: approximate an average with a rigorous confidence
// interval, orders of magnitude faster than an exact scan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fastframe"
)

func main() {
	// Synthesize a 4M-row Flights table (Origin, Airline, DepDelay,
	// DepTime, DayOfWeek). In a real deployment you would load your own
	// data with fastframe.NewTableBuilder.
	fmt.Println("generating 4M flights rows...")
	tab, err := fastframe.GenerateFlights(4_000_000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// "What is the average departure delay out of ORD?" — stop as soon
	// as the answer is known to within 10% relative error, with
	// probability 1−1e−15 (effectively deterministic).
	q := fastframe.Avg("DepDelay").
		Where("Origin", "ORD").
		StopAtRelError(0.10).
		Named("ord-delay")

	res, err := tab.Run(q, fastframe.ExecOptions{})
	if err != nil {
		log.Fatal(err)
	}
	approx := res.Groups[0]
	fmt.Printf("approximate: AVG(DepDelay) = %v\n", approx.Avg)
	fmt.Printf("  using %d samples, %d of %d blocks, %.1fms\n",
		approx.Samples, res.BlocksFetched, tab.NumBlocks(),
		float64(res.Duration.Microseconds())/1000)

	// Compare with the exact answer (full scan).
	ex, err := tab.RunExact(q)
	if err != nil {
		log.Fatal(err)
	}
	truth := ex.Groups[0].Avg
	fmt.Printf("exact:       AVG(DepDelay) = %.6g (full scan: %.1fms)\n",
		truth, float64(ex.Duration.Microseconds())/1000)
	fmt.Printf("speedup: %.1fx; interval contains truth: %v\n",
		ex.Duration.Seconds()/res.Duration.Seconds(), approx.Avg.Contains(truth))
}
