// Prepared statements and the streaming cursor: compile a
// parameterized query once, run it with different bindings, and watch
// one run's confidence intervals tighten round by round through the
// pull-based Rows cursor until the stopping rule fires.
//
//	go run ./examples/prepared
package main

import (
	"context"
	"fmt"
	"log"

	"fastframe"
)

func main() {
	tab, err := fastframe.GenerateFlights(2_000_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	eng := fastframe.NewEngine(fastframe.WithSessionBudget(1e-12, 100))
	if err := eng.Register("flights", tab); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Compile once: the SQL text is lexed, parsed and planned a single
	// time; every run below only binds arguments.
	stmt, err := eng.Prepare(
		"SELECT COUNT(*) FROM flights WHERE Origin = ? AND DepTime > ? WITHIN ?%",
		fastframe.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stmt.Explain())
	fmt.Println()

	// Run many: same plan, different bindings. A loose 10% target
	// stops after a fraction of the scramble.
	for _, origin := range []string{"ORD", "ATL", "LAX"} {
		res, err := stmt.Query(ctx, origin, 1200.0, 10.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s departures after 12:00 — %v (scanned %4.1f%% of rows, stopped=%v)\n",
			origin, res.Groups[0].Count, 100*float64(res.RowsCovered)/float64(tab.NumRows()), res.Stopped)
	}

	// Stream one run at a tighter 2% target: the cursor delivers a
	// snapshot per interval-recomputation round; the scan is
	// consumer-paced, and Close would abort it with the partial
	// intervals still valid.
	fmt.Println("\nstreaming ORD at a 2% target:")
	rows, err := stmt.Stream(ctx, "ORD", 1200.0, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for p := range rows.Rounds() {
		g := p.Groups[0]
		if p.Round%5 == 0 || g.Count.Width() <= 0.02*g.Count.Estimate {
			fmt.Printf("  round %2d: %8d rows covered, count ∈ [%9.0f, %9.0f]\n",
				p.Round, p.RowsCovered, g.Count.Lo, g.Count.Hi)
		}
	}
	res, err := rows.Final()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %v after %d rounds (stopped=%v)\n",
		res.Groups[0].Count, res.Rounds, res.Stopped)

	// One-shot Engine.Query traffic reuses plans too: the engine keeps
	// an LRU cache keyed by SQL text, so only the first occurrence of a
	// statement pays for parsing.
	const oneShot = "SELECT COUNT(*) FROM flights WHERE Origin = 'ORD' WITHIN 10%"
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(ctx, oneShot, fastframe.WithSeed(uint64(i))); err != nil {
			log.Fatal(err)
		}
	}
	hits, misses, size := eng.PlanCacheStats()
	fmt.Printf("\nplan cache after 3 identical one-shot queries: %d hits, %d misses, %d cached\n",
		hits, misses, size)
}
