// SQL star/snowflake joins end to end: register dimension tables on an
// Engine, JOIN them in SQL (one-shot, prepared with '?' parameters, and
// through database/sql), and watch the dimension predicate compile into
// a fact-side IN key set in the plan.
//
//	go run ./examples/joinsql
package main

import (
	"context"
	"fmt"
	"log"

	"fastframe"
	ffdriver "fastframe/driver"
)

func main() {
	ctx := context.Background()

	fmt.Println("generating 1M flights rows (fact table)...")
	fact, err := fastframe.GenerateFlights(1_000_000, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Dimensions: airports (region, state per Origin) and — one
	// snowflake level deeper — states (zone per state).
	origins, err := fact.CategoricalValues("Origin")
	if err != nil {
		log.Fatal(err)
	}
	airports := fastframe.NewDimension("airports")
	regions := []string{"west", "east", "south"}
	statesByIdx := []string{"CA", "NY", "TX", "WA"}
	for i, code := range origins {
		airports.Add(code, map[string]string{
			"region": regions[i%len(regions)],
			"state":  statesByIdx[i%len(statesByIdx)],
		})
	}
	states := fastframe.NewDimension("states")
	states.Add("CA", map[string]string{"zone": "pacific"})
	states.Add("WA", map[string]string{"zone": "pacific"})
	states.Add("NY", map[string]string{"zone": "atlantic"})
	states.Add("TX", map[string]string{"zone": "gulf"})

	eng := fastframe.NewEngine()
	must(eng.Register("flights", fact))
	must(eng.RegisterDimension("airports", airports))
	must(eng.RegisterDimension("states", states))
	must(eng.AttachDimension("flights", "Origin", "airports")) // star arm
	must(eng.AttachDimension("airports", "state", "states"))   // snowflake chain

	// One-shot JOIN: the dimension predicate compiles, at bind time,
	// into Origin IN {matching airport keys} — visible in the plan.
	const joinSQL = "SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region = 'west' AND DepDelay > 0 " +
		"GROUP BY DayOfWeek WITHIN 5%"
	plan, err := eng.Explain(joinSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan:\n%s\n\n", plan)
	res, err := eng.Query(ctx, joinSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("west positive-delay AVG by weekday (%d of %d blocks fetched):\n",
		res.BlocksFetched, fact.NumBlocks())
	for _, g := range res.Groups {
		fmt.Printf("  %s: %v\n", g.Key, g.Avg)
	}

	// Prepared: '?' works in dimension value positions too.
	stmt, err := eng.Prepare("SELECT COUNT(*) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region IN (?, ?) WITHIN 10%")
	if err != nil {
		log.Fatal(err)
	}
	for _, pair := range [][2]string{{"west", "south"}, {"east", "south"}} {
		r, err := stmt.Query(ctx, pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flights from %s∪%s regions: %v\n", pair[0], pair[1], r.Groups[0].Count)
	}

	// Snowflake: a predicate two joins away from the fact table.
	r, err := eng.Query(ctx, "SELECT AVG(DepDelay) FROM flights "+
		"JOIN airports ON flights.Origin = airports.key "+
		"JOIN states ON airports.state = states.key "+
		"WHERE states.zone = 'pacific' WITHIN 5%")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pacific-zone AVG(DepDelay): %v\n", r.Groups[0].Avg)

	// database/sql: the same join view through the standard interface.
	db := ffdriver.OpenDB(eng)
	defer db.Close()
	rows, err := db.Query("SELECT AVG(DepDelay) FROM flights "+
		"JOIN airports ON flights.Origin = airports.key "+
		"WHERE airports.region = ? GROUP BY DayOfWeek WITHIN ABS ?", "east", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("east region by weekday via database/sql:")
	for rows.Next() {
		var (
			key            string
			est, lo, hi    float64
			samples        int64
			exact, aborted bool
		)
		if err := rows.Scan(&key, &est, &lo, &hi, &samples, &exact, &aborted); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %.3f ∈ [%.3f, %.3f] (%d samples)\n", key, est, lo, hi, samples)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
