// Embedding the HTTP query service in-process: build an Engine, mount
// serve.New on a test listener, and watch a streamed query's
// confidence intervals tighten round by round over the wire — the
// same NDJSON protocol ffserved speaks, without running the daemon.
//
//	go run ./examples/ffserved
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"fastframe"
	"fastframe/internal/serve"
)

func main() {
	// The engine any ffserved daemon owns: tables registered up front,
	// options fixed for reproducible answers.
	tab, err := fastframe.GenerateFlights(200_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	eng := fastframe.NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		log.Fatal(err)
	}

	// Two tenants: "analytics" pays δ per query out of a budget and is
	// rate-limited; anonymous requests run unlimited (demo only).
	srv, err := serve.New(eng, serve.Config{
		Tenants: []serve.TenantConfig{
			{Name: "analytics", Token: "s3cret", QueryDelta: 0.01, DeltaBudget: 0.2, RatePerSec: 10, MaxConcurrent: 4},
			{Name: "anonymous"},
		},
		Options:      []fastframe.Option{fastframe.WithSeed(42), fastframe.WithRoundRows(10_000)},
		QueryTimeout: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Stream a grouped query: one NDJSON line per interval-recomputation
	// round, terminal result line last.
	body, _ := json.Marshal(serve.QueryRequest{
		SQL: "SELECT AVG(DepDelay) FROM flights GROUP BY DayOfWeek WITHIN 5%",
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("stream status %s", resp.Status)
	}

	fmt.Println("round  rows      widest CI")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var line serve.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatal(err)
		}
		switch {
		case line.Progress != nil:
			widest := 0.0
			for _, g := range line.Progress.Groups {
				if w := g.Avg.Hi - g.Avg.Lo; w > widest {
					widest = w
				}
			}
			fmt.Printf("%5d  %8d  ±%.3f\n", line.Progress.Round, line.Progress.RowsCovered, widest/2)
		case line.Result != nil:
			fmt.Printf("\nfinal (%d rounds, %d of %d rows):\n", line.Result.Rounds, line.Result.RowsCovered, tab.NumRows())
			for _, g := range line.Result.Groups {
				fmt.Printf("  day %s: %.2f ∈ [%.2f, %.2f]\n", g.Key, g.Avg.Estimate, g.Avg.Lo, g.Avg.Hi)
			}
			fmt.Printf("tenant %s spent δ=%.3g of budget %.3g\n",
				line.Accounting.Tenant, line.Accounting.DeltaSpent, line.Accounting.DeltaBudget)
		case line.Error != nil:
			log.Fatal(line.Error)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// One-shot queries share the same tenant budget — and exhaustion is
	// a structured 429, not a silent wrong answer.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained: every in-flight stream ended with a valid partial interval")
}
