// Benchmarks regenerating the paper's evaluation (§5), one benchmark
// family per table/figure. Each op is one end-to-end query execution on
// a shared 500k-row synthetic Flights scramble; "blocks/op" is the
// paper's hardware-independent cost metric. cmd/ffbench runs the same
// experiment code at full scale and prints the paper's row/series
// layout; EXPERIMENTS.md records a reference run.
//
//	go test -bench=. -benchmem
//	go test -bench=Table5 -benchtime=5x
package fastframe

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"

	"fastframe/internal/ci"
	"fastframe/internal/core"
	"fastframe/internal/exact"
	"fastframe/internal/exec"
	"fastframe/internal/experiments"
	"fastframe/internal/flights"
	"fastframe/internal/query"
	"fastframe/internal/table"
)

// benchRows is the smallest scale at which the paper's regimes
// differentiate (views large enough that distribution-sensitive bounds
// terminate early while range-only bounds cannot); run cmd/ffbench
// -rows 4000000 for the full-scale numbers recorded in EXPERIMENTS.md.
const benchRows = 2_000_000

var (
	benchOnce  sync.Once
	benchTable *table.Table
)

func benchCfg() experiments.Config {
	return experiments.Config{
		Rows:      benchRows,
		Seed:      42,
		Delta:     exec.DefaultDelta,
		RoundRows: 40_000,
		Strategy:  exec.ActivePeek,
	}
}

func getBenchTable(b *testing.B) *table.Table {
	b.Helper()
	benchOnce.Do(func() {
		t, err := experiments.BuildTable(benchCfg())
		if err != nil {
			panic(err)
		}
		benchTable = t
	})
	return benchTable
}

func runBench(b *testing.B, q query.Query, bounder ci.Bounder, strategy exec.Strategy) {
	b.Helper()
	t := getBenchTable(b)
	cfg := benchCfg()
	var blocks, rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec.Run(t, q, exec.Options{
			Bounder:    bounder,
			Strategy:   strategy,
			Delta:      cfg.Delta,
			RoundRows:  cfg.RoundRows,
			StartBlock: i * 7919, // vary the start like the paper's random offsets
		})
		if err != nil {
			b.Fatal(err)
		}
		blocks, rows = res.BlocksFetched, res.RowsCovered
	}
	b.ReportMetric(float64(blocks), "blocks/op")
	b.ReportMetric(float64(rows), "rows/op")
}

func runExactBench(b *testing.B, q query.Query) {
	b.Helper()
	t := getBenchTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Run(t, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.Layout().NumBlocks()), "blocks/op")
}

// BenchmarkTable5 is the error-bounder ablation of Table 5: every
// Flights query under Exact and the four bounder arms.
func BenchmarkTable5(b *testing.B) {
	for _, q := range flights.DefaultQueries() {
		q := q
		b.Run(q.Name+"/Exact", func(b *testing.B) { runExactBench(b, q) })
		for _, arm := range experiments.Bounders() {
			arm := arm
			b.Run(q.Name+"/"+arm.Name, func(b *testing.B) {
				runBench(b, q, arm.B, exec.ActivePeek)
			})
		}
	}
}

// BenchmarkTable6 is the sampling-strategy ablation of Table 6:
// GROUP BY queries with Bernstein+RT under Scan/ActiveSync/ActivePeek.
func BenchmarkTable6(b *testing.B) {
	bounder := core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}
	strategies := []struct {
		name string
		s    exec.Strategy
	}{
		{"Scan", exec.Scan},
		{"ActiveSync", exec.ActiveSync},
		{"ActivePeek", exec.ActivePeek},
	}
	for _, q := range experiments.Table6Queries() {
		q := q
		for _, st := range strategies {
			st := st
			b.Run(q.Name+"/"+st.name, func(b *testing.B) {
				runBench(b, q, bounder, st.s)
			})
		}
	}
}

// BenchmarkFig6 is the selectivity sweep of Figure 6: F-q1[ε=.5] on
// airports spanning the selectivity range, per bounder.
func BenchmarkFig6(b *testing.B) {
	airports := experiments.Fig6Airports()
	picks := []string{airports[0], airports[len(airports)/2], airports[len(airports)-1]}
	for _, airport := range picks {
		q := flights.Q1(airport, 0.5)
		for _, arm := range experiments.Bounders() {
			arm := arm
			b.Run(airport+"/"+arm.Name, func(b *testing.B) {
				runBench(b, q, arm.B, exec.ActivePeek)
			})
		}
	}
}

// BenchmarkFig7a is the requested-relative-error sweep of Figure 7(a)
// for the headline bounder.
func BenchmarkFig7a(b *testing.B) {
	bounder := core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}
	for _, eps := range []float64{0.1, 0.5, 1.0, 2.0} {
		q := flights.Q1("ORD", eps)
		b.Run(q.Name+"/eps="+ftoa(eps), func(b *testing.B) {
			runBench(b, q, bounder, exec.ActivePeek)
		})
	}
}

// BenchmarkFig7b is the HAVING-threshold sweep of Figure 7(b): an easy
// threshold (far below every aggregate), a mid-gap threshold, and a
// near-aggregate threshold, for Hoeffding vs Bernstein+RT.
func BenchmarkFig7b(b *testing.B) {
	arms := []experiments.BounderSpec{
		experiments.Bounders()[0], // Hoeffding
		experiments.Bounders()[3], // Bernstein+RT
	}
	for _, thresh := range []float64{0, 9.3, 10.1} {
		q := flights.Q2(thresh)
		for _, arm := range arms {
			arm := arm
			b.Run("thresh="+ftoa(thresh)+"/"+arm.Name, func(b *testing.B) {
				runBench(b, q, arm.B, exec.ActivePeek)
			})
		}
	}
}

// BenchmarkFig8 is the minimum-departure-time sweep of Figure 8 for
// Hoeffding+RT vs Bernstein+RT.
func BenchmarkFig8(b *testing.B) {
	arms := []experiments.BounderSpec{
		experiments.Bounders()[1], // Hoeffding+RT
		experiments.Bounders()[3], // Bernstein+RT
	}
	for _, mdt := range []float64{1000, 1730, 2250} {
		q := flights.Q3(mdt)
		for _, arm := range arms {
			arm := arm
			b.Run("mindep="+ftoa(mdt)+"/"+arm.Name, func(b *testing.B) {
				runBench(b, q, arm.B, exec.ActivePeek)
			})
		}
	}
}

// BenchmarkParallelScan measures the partitioned executor's full-scan
// throughput on a large-group scan — AVG(DepDelay) GROUP BY Origin,
// exhaustive, so every block is fetched and every row feeds a group
// state — at worker counts 1 (the sequential legacy path), 2, 4, and
// NumCPU. Results are bit-identical across counts (the equivalence
// property), so the only difference is wall time; rows/op ÷ sec/op is
// the scan throughput. Scaling requires physical cores: on a
// single-CPU machine all counts collapse to sequential speed.
func BenchmarkParallelScan(b *testing.B) {
	t := getBenchTable(b)
	q := query.Query{
		Name:    "parallel-scan",
		Agg:     query.Aggregate{Kind: query.Avg, Column: flights.ColDepDelay},
		GroupBy: []string{flights.ColOrigin},
		Stop:    query.Exhaust(),
	}
	bounder := core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}
	seen := map[int]bool{}
	for _, p := range []int{1, 2, 4, runtime.NumCPU()} {
		if seen[p] {
			continue
		}
		seen[p] = true
		b.Run("P="+itoa(int64(p)), func(b *testing.B) {
			var rows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.Run(t, q, exec.Options{
					Bounder:     bounder,
					Strategy:    exec.Scan,
					Delta:       exec.DefaultDelta,
					RoundRows:   40_000,
					Parallelism: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				rows = res.RowsCovered
			}
			b.ReportMetric(float64(rows), "rows/op")
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}

var (
	selectiveOnce sync.Once
	selectiveLo   float64
)

// selectiveThreshold returns the 99.9th percentile of DepDelay on the
// shared bench table: the cut that makes "DepDelay ≥ lo" select ~0.1%
// of rows, the regime where float zone maps prune most blocks.
func selectiveThreshold(b *testing.B, t *table.Table) float64 {
	b.Helper()
	selectiveOnce.Do(func() {
		col, err := t.Float(flights.ColDepDelay)
		if err != nil {
			panic(err)
		}
		vals := append([]float64(nil), col.Values...)
		sort.Float64s(vals)
		selectiveLo = vals[len(vals)*999/1000]
	})
	return selectiveLo
}

// BenchmarkSelectiveScan measures a highly selective float-range WHERE
// (the 99.9th-percentile tail of DepDelay) scanned to exhaustion: the
// workload where per-block float zone maps pay off, since a block with
// no tail value is pruned without being fetched. blocks/op is the
// hardware-independent cost metric; ns/op and allocs/op feed the
// BENCH_5.json perf trajectory.
func BenchmarkSelectiveScan(b *testing.B) {
	t := getBenchTable(b)
	lo := selectiveThreshold(b, t)
	q := query.Query{
		Name: "selective-scan",
		Agg:  query.Aggregate{Kind: query.Avg, Column: flights.ColDepDelay},
		Pred: query.Predicate{}.AndRange(flights.ColDepDelay, lo, math.Inf(1)),
		Stop: query.Exhaust(),
	}
	bounder := core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}
	var blocks, rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec.Run(t, q, exec.Options{
			Bounder:   bounder,
			Strategy:  exec.Scan,
			Delta:     exec.DefaultDelta,
			RoundRows: 40_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		blocks, rows = res.BlocksFetched, res.RowsCovered
	}
	b.ReportMetric(float64(blocks), "blocks/op")
	b.ReportMetric(float64(rows), "rows/op")
}

// BenchmarkMultiAggScan measures the tentpole economics of
// multi-aggregate SELECT lists: one scan feeding N per-group aggregate
// states versus N solo scans, at N ∈ {1, 2, 4, 8}. The stopping rule is
// a fixed sample count so every arm covers the same rows; the multi arm
// fetches each block once while the solo arm fetches it N times, so
// blocks/op (and wall time, on I/O-bound tables) should scale ~1 vs ~N.
func BenchmarkMultiAggScan(b *testing.B) {
	t := getBenchTable(b)
	allAggs := []query.Aggregate{
		{Kind: query.Avg, Column: flights.ColDepDelay},
		{Kind: query.Median, Column: flights.ColDepDelay},
		{Kind: query.Var, Column: flights.ColDepDelay},
		{Kind: query.CountDistinct, Column: flights.ColOrigin},
		{Kind: query.Sum, Column: flights.ColDepDelay},
		{Kind: query.Percentile, Column: flights.ColDepDelay, P: 0.9},
		{Kind: query.Stddev, Column: flights.ColDepDelay},
		{Kind: query.Count},
	}
	bounder := core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}
	opts := exec.Options{
		Bounder:   bounder,
		Strategy:  exec.Scan,
		Delta:     exec.DefaultDelta,
		RoundRows: 40_000,
	}
	const samples = 20_000 // per group; ~7 near-uniform DayOfWeek groups
	for _, n := range []int{1, 2, 4, 8} {
		aggs := allAggs[:n]
		b.Run("multi/N="+itoa(int64(n)), func(b *testing.B) {
			var blocks int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := exec.Run(t, query.Query{
					Name:    "multi",
					Aggs:    aggs,
					GroupBy: []string{flights.ColDayOfWeek},
					Stop:    query.FixedSamples(samples),
				}, opts)
				if err != nil {
					b.Fatal(err)
				}
				blocks = res.BlocksFetched
			}
			b.ReportMetric(float64(blocks), "blocks/op")
		})
		b.Run("solo/N="+itoa(int64(n)), func(b *testing.B) {
			var blocks int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blocks = 0
				for _, a := range aggs {
					res, err := exec.Run(t, query.Query{
						Name:    "solo",
						Agg:     a,
						GroupBy: []string{flights.ColDayOfWeek},
						Stop:    query.FixedSamples(samples),
					}, opts)
					if err != nil {
						b.Fatal(err)
					}
					blocks += res.BlocksFetched
				}
			}
			b.ReportMetric(float64(blocks), "blocks/op")
		})
	}
}

// BenchmarkScrambleBuild measures the one-time cost the architecture
// amortizes: synthesizing rows, shuffling them into a scramble, and
// building dictionaries, catalogs and block bitmap indexes.
func BenchmarkScrambleBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := flights.Generate(flights.Config{Rows: 200_000, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
	b.ReportMetric(200_000, "rows/op")
}

// BenchmarkExactScan measures the raw full-scan throughput underlying
// the Exact baseline.
func BenchmarkExactScan(b *testing.B) {
	t := getBenchTable(b)
	q := flights.Q2(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Run(t, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.NumRows()), "rows/op")
}

// BenchmarkBounderUpdate measures the streaming per-tuple cost of each
// bounder's state update — the CPU-overhead confounder §5.3 controls
// for by also reporting blocks fetched.
func BenchmarkBounderUpdate(b *testing.B) {
	bounders := []experiments.BounderSpec{
		{Name: "Hoeffding", B: ci.HoeffdingSerfling{}},
		{Name: "Bernstein", B: ci.EmpiricalBernsteinSerfling{}},
		{Name: "Bernstein+RT", B: core.RangeTrim{Inner: ci.EmpiricalBernsteinSerfling{}}},
		{Name: "Anderson", B: ci.AndersonDKW{}},
	}
	for _, arm := range bounders {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			s := arm.B.NewState()
			for i := 0; i < b.N; i++ {
				s.Update(float64(i % 1000))
			}
		})
	}
}

// BenchmarkBoundCompute measures one Lower+Upper bound computation.
func BenchmarkBoundCompute(b *testing.B) {
	p := ci.Params{A: 0, B: 1000, N: 1 << 20, Delta: 1e-15}
	for _, arm := range experiments.Bounders() {
		arm := arm
		b.Run(arm.Name, func(b *testing.B) {
			s := arm.B.NewState()
			for i := 0; i < 10_000; i++ {
				s.Update(float64(i % 997))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Lower(p)
				_ = s.Upper(p)
			}
		})
	}
}

func ftoa(v float64) string {
	switch {
	case v == float64(int64(v)):
		return itoa(int64(v))
	default:
		return itoa(int64(v)) + "." + itoa(int64(v*10)%10)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
