package fastframe

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func stmtTestEngine(t *testing.T) *Engine {
	t.Helper()
	tab, err := GenerateFlights(30_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	return eng
}

// sameAnswer compares two Results field-for-field except the
// time-dependent Duration.
func sameAnswer(a, b *Result) bool {
	ac, bc := *a, *b
	ac.Duration, bc.Duration = 0, 0
	return reflect.DeepEqual(ac, bc)
}

// TestStmtEquivalentToLiteralQuery is the acceptance criterion: one
// Stmt compiled once and run with different bound args must produce
// results identical to Engine.Query on the equivalent literal SQL.
func TestStmtEquivalentToLiteralQuery(t *testing.T) {
	eng := stmtTestEngine(t)
	ctx := context.Background()

	stmt, err := eng.Prepare(
		"SELECT AVG(DepDelay) FROM flights WHERE Origin = ? GROUP BY Airline WITHIN ABS ?",
		WithSeed(9), WithRoundRows(4000))
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("NumParams = %d", stmt.NumParams())
	}

	for _, c := range []struct {
		origin  string
		eps     float64
		literal string
	}{
		{"ORD", 3.0, "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' GROUP BY Airline WITHIN ABS 3"},
		{"LAX", 5.0, "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'LAX' GROUP BY Airline WITHIN ABS 5"},
		{"ATL", 2.0, "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ATL' GROUP BY Airline WITHIN ABS 2"},
	} {
		got, err := stmt.Query(ctx, c.origin, c.eps)
		if err != nil {
			t.Fatalf("stmt.Query(%s): %v", c.origin, err)
		}
		want, err := eng.Query(ctx, c.literal, WithSeed(9), WithRoundRows(4000))
		if err != nil {
			t.Fatalf("literal query: %v", err)
		}
		if !sameAnswer(got, want) {
			t.Errorf("%s: prepared result differs from literal result", c.origin)
		}
	}

	// QueryExact through the statement matches the literal exact path.
	ex, err := stmt.QueryExact(ctx, "ORD", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	exWant, err := eng.QueryExact(ctx, "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' GROUP BY Airline WITHIN ABS 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Groups) != len(exWant.Groups) {
		t.Fatalf("exact group counts differ: %d vs %d", len(ex.Groups), len(exWant.Groups))
	}
	for i := range ex.Groups {
		g, w := ex.Groups[i], exWant.Groups[i]
		if g.Key != w.Key || g.Count != w.Count || g.Sum != w.Sum || g.Avg != w.Avg ||
			len(g.Stats) != len(w.Stats) {
			t.Errorf("exact group %d: %+v vs %+v", i, g, w)
			continue
		}
		for k := range g.Stats {
			if g.Stats[k] != w.Stats[k] {
				t.Errorf("exact group %d stat %d: %v vs %v", i, k, g.Stats[k], w.Stats[k])
			}
		}
	}
}

// TestStmtBindErrors: binding failures surface before any scan and
// identify the slot.
func TestStmtBindErrors(t *testing.T) {
	eng := stmtTestEngine(t)
	stmt, err := eng.Prepare("SELECT AVG(DepDelay) FROM flights WHERE Origin = ? WITHIN ?%")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background(), 42, 5.0); err == nil ||
		!strings.Contains(err.Error(), "parameter 1") {
		t.Errorf("type error = %v", err)
	}
	if _, err := stmt.Query(context.Background(), "ORD"); err == nil {
		t.Error("underbinding accepted")
	}
	if _, err := stmt.Bind("ORD", 5.0); err != nil {
		t.Errorf("valid Bind failed: %v", err)
	}

	// Engine.Query refuses parameterized text with a pointer to Prepare.
	if _, err := eng.Query(context.Background(),
		"SELECT AVG(DepDelay) FROM flights WHERE Origin = ?"); err == nil ||
		!strings.Contains(err.Error(), "Prepare") {
		t.Errorf("parameterized Engine.Query error = %v", err)
	}
}

// TestStmtConcurrentReuse runs one Stmt from many goroutines with
// different bindings; under -race this doubles as the data-race check.
func TestStmtConcurrentReuse(t *testing.T) {
	eng := stmtTestEngine(t)
	stmt, err := eng.Prepare(
		"SELECT COUNT(*) FROM flights WHERE Origin = ? AND DepTime > ? EXACT",
		WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	origins := []string{"ORD", "ATL", "LAX", "PHX", "DEN"}

	// Reference answers, computed serially.
	want := make([]*Result, len(origins))
	for i, o := range origins {
		if want[i], err = stmt.Query(context.Background(), o, 1000.0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4*len(origins))
	for rep := 0; rep < 4; rep++ {
		for i, o := range origins {
			wg.Add(1)
			go func(i int, o string) {
				defer wg.Done()
				got, err := stmt.Query(context.Background(), o, 1000.0)
				if err != nil {
					errs <- err
					return
				}
				if !sameAnswer(got, want[i]) {
					t.Errorf("concurrent run for %s diverged", o)
				}
			}(i, o)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanCache: repeated SQL text hits the cache, the LRU evicts, and
// WithPlanCacheSize(0) disables caching.
func TestPlanCache(t *testing.T) {
	eng := stmtTestEngine(t)
	ctx := context.Background()
	const q = "SELECT COUNT(*) FROM flights EXACT"

	for i := 0; i < 3; i++ {
		if _, err := eng.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := eng.PlanCacheStats()
	if hits != 2 || misses != 1 || size != 1 {
		t.Errorf("stats after 3 identical queries = (%d hits, %d misses, %d size), want (2, 1, 1)", hits, misses, size)
	}

	// Prepare shares the same cache as Query.
	if _, err := eng.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := eng.PlanCacheStats(); hits != 3 {
		t.Errorf("Prepare did not hit the plan cache: hits = %d", hits)
	}

	// A tiny cache evicts least-recently-used text.
	small := NewEngine(WithPlanCacheSize(2))
	if err := small.Register("flights", mustTable(t)); err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"SELECT COUNT(*) FROM flights EXACT",
		"SELECT AVG(DepDelay) FROM flights EXACT",
		"SELECT SUM(DepDelay) FROM flights EXACT",
	}
	for _, q := range texts {
		if _, err := small.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := small.PlanCacheStats(); size != 2 {
		t.Errorf("LRU size = %d, want 2", size)
	}
	// texts[0] was evicted; texts[2] is resident.
	if _, err := small.Prepare(texts[2]); err != nil {
		t.Fatal(err)
	}
	hits, _, _ = small.PlanCacheStats()
	if hits != 1 {
		t.Errorf("hits after re-preparing resident text = %d, want 1", hits)
	}

	// Disabled cache: everything misses, nothing is stored.
	off := NewEngine(WithPlanCacheSize(0))
	if err := off.Register("flights", mustTable(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := off.Prepare(q); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _, size := off.PlanCacheStats(); hits != 0 || size != 0 {
		t.Errorf("disabled cache stats = (%d hits, %d size)", hits, size)
	}
}

var (
	sharedTabOnce sync.Once
	sharedTab     *Table
	sharedTabErr  error
)

func mustTable(t *testing.T) *Table {
	t.Helper()
	sharedTabOnce.Do(func() { sharedTab, sharedTabErr = GenerateFlights(5_000, 3) })
	if sharedTabErr != nil {
		t.Fatal(sharedTabErr)
	}
	return sharedTab
}

// TestSessionAccounting pins the unified rule: every produced result
// counts toward QueriesRun; only approximate results charge δ.
func TestSessionAccounting(t *testing.T) {
	tab := mustTable(t)
	eng := NewEngine(WithSessionBudget(1e-12, 4))
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	perQuery := 2.5e-13

	// 1. Approximate query: counts and charges.
	if _, err := eng.Query(ctx, "SELECT AVG(DepDelay) FROM flights WITHIN 50%", WithRoundRows(1000)); err != nil {
		t.Fatal(err)
	}
	if n := eng.QueriesRun(); n != 1 {
		t.Fatalf("after approx query: QueriesRun = %d", n)
	}
	if spent := eng.SessionError(); math.Abs(spent-perQuery) > 1e-25 {
		t.Fatalf("after approx query: SessionError = %v", spent)
	}

	// 2. Exact query: counts, does not charge (deterministic, δ-free).
	if _, err := eng.QueryExact(ctx, "SELECT AVG(DepDelay) FROM flights"); err != nil {
		t.Fatal(err)
	}
	if n := eng.QueriesRun(); n != 2 {
		t.Errorf("after exact query: QueriesRun = %d, want 2", n)
	}
	if spent := eng.SessionError(); math.Abs(spent-perQuery) > 1e-25 {
		t.Errorf("exact query charged the budget: SessionError = %v", spent)
	}

	// 3. Failed run: neither counts nor charges.
	if _, err := eng.Query(ctx, "SELECT AVG(NoSuchColumn) FROM flights"); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := eng.QueryExact(ctx, "SELECT AVG(NoSuchColumn) FROM flights"); err == nil {
		t.Fatal("bad exact column accepted")
	}
	if n := eng.QueriesRun(); n != 2 {
		t.Errorf("failed runs counted: QueriesRun = %d, want 2", n)
	}
	if spent := eng.SessionError(); math.Abs(spent-perQuery) > 1e-25 {
		t.Errorf("failed runs charged: SessionError = %v", spent)
	}

	// 4. Aborted approximate query: counts and charges (its partial
	// intervals were reported).
	stop := func(Progress) bool { return false }
	if _, err := eng.Query(ctx, "SELECT AVG(DepDelay) FROM flights WITHIN 1%",
		WithRoundRows(500), WithProgress(stop)); err != nil {
		t.Fatal(err)
	}
	if n := eng.QueriesRun(); n != 3 {
		t.Errorf("aborted query not counted: QueriesRun = %d, want 3", n)
	}
	if spent := eng.SessionError(); math.Abs(spent-2*perQuery) > 1e-25 {
		t.Errorf("aborted query not charged: SessionError = %v", spent)
	}

	// 5. A drained stream counts and charges once, on completion.
	rows, err := eng.Stream(ctx, "SELECT AVG(DepDelay) FROM flights WITHIN 50%", WithRoundRows(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Final(); err != nil {
		t.Fatal(err)
	}
	if n := eng.QueriesRun(); n != 4 {
		t.Errorf("stream not counted: QueriesRun = %d, want 4", n)
	}
	if spent := eng.SessionError(); math.Abs(spent-3*perQuery) > 1e-25 {
		t.Errorf("stream not charged once: SessionError = %v", spent)
	}
}

// TestEngineExplainDetail: the upgraded Explain renders the full plan.
func TestEngineExplainDetail(t *testing.T) {
	eng := NewEngine()
	plan, err := eng.Explain(
		"SELECT SUM(DepDelay) FROM flights WHERE Airline IN ('AA', 'HP') AND DepTime BETWEEN 900 AND 1800 GROUP BY Origin ORDER BY SUM(DepDelay) DESC LIMIT 3 PARALLEL 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"SELECT SUM(DepDelay)",
		"FROM flights",
		`Airline IN ("AA", "HP")`,
		"DepTime BETWEEN 900 AND 1800",
		"GROUP BY Origin",
		"STOP top-k",
		"top-3",
		"PARALLEL 2 workers",
	} {
		if !strings.Contains(plan, sub) {
			t.Errorf("Explain missing %q in:\n%s", sub, plan)
		}
	}

	// Prepared-statement slots render in the plan.
	stmt, err := eng.Prepare("SELECT AVG(DepDelay) FROM flights WHERE Origin = ? WITHIN ABS ?")
	if err != nil {
		t.Fatal(err)
	}
	plan = stmt.Explain()
	for _, sub := range []string{"PARAMS 2 slot(s)", "$1 string", "$2 number", "WITHIN ABS ?"} {
		if !strings.Contains(plan, sub) {
			t.Errorf("stmt Explain missing %q in:\n%s", sub, plan)
		}
	}

	// A bound statement renders the same full plan with the slots
	// replaced by their bound values.
	bound, err := stmt.Bind("ORD", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan = bound.Explain()
	for _, sub := range []string{`Origin = "ORD"`, "abs-width", "0.5", "FROM flights"} {
		if !strings.Contains(plan, sub) {
			t.Errorf("bound Explain missing %q in:\n%s", sub, plan)
		}
	}
	if strings.Contains(plan, "$1") || strings.Contains(plan, "PARAMS") {
		t.Errorf("bound Explain still shows parameter slots:\n%s", plan)
	}
}
