package fastframe

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"fastframe/internal/stats"
)

// Monte-Carlo coverage harness: on data drawn from known distributions,
// the empirical probability that a query's (1−δ) interval misses the
// true aggregate must stay below δ (plus a sampling tolerance), for
// the sequential and the parallel execution path alike. The scan is
// cut off mid-stream with WithMaxRows so the intervals under test are
// genuine partial-coverage CIs, not exact finalizations.

// coverageTolerance absorbs the Monte-Carlo noise of estimating a miss
// rate from a finite number of trials.
const coverageTolerance = 0.02

type coverageDist struct {
	name string
	gen  func(rng *rand.Rand) float64
	lo   float64 // a-priori catalog bounds fed to the builder
	hi   float64
}

func coverageDists() []coverageDist {
	return []coverageDist{
		{
			name: "uniform",
			gen:  func(rng *rand.Rand) float64 { return rng.Float64() * 100 },
			lo:   0, hi: 100,
		},
		{
			name: "heavy-tail",
			// Exponential with a hard cap: skewed, most mass far from
			// the upper catalog bound — the regime RangeTrim targets.
			gen: func(rng *rand.Rand) float64 { return min(rng.ExpFloat64()*8, 400) },
			lo:  0, hi: 400,
		},
		{
			name: "bimodal",
			gen: func(rng *rand.Rand) float64 {
				if rng.Float64() < 0.3 {
					return -20 + rng.NormFloat64()
				}
				return 35 + rng.NormFloat64()
			},
			lo: -60, hi: 80,
		},
	}
}

// buildCoverageTable synthesizes one trial's table and returns it with
// the true mean and the true count of values above 20.
func buildCoverageTable(t *testing.T, d coverageDist, seed uint64) (tab *Table, mean float64, above int) {
	t.Helper()
	const rows = 2500
	rng := rand.New(rand.NewPCG(seed, 0xc0ffee))
	tb, err := NewTableBuilder(Column{Name: "v", Kind: Float})
	if err != nil {
		t.Fatal(err)
	}
	var w stats.Welford
	for i := 0; i < rows; i++ {
		v := d.gen(rng)
		w.Add(v)
		if v > 20 {
			above++
		}
		if err := tb.AppendRow(map[string]float64{"v": v}, nil); err != nil {
			t.Fatal(err)
		}
	}
	tb.WidenBounds("v", d.lo, d.hi)
	tab, err = tb.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	return tab, w.Mean(), above
}

// TestStatisticalCoverage runs ≥ 500 seeded trials per execution path
// (short mode: 60) across the distributions, checking that empirical
// CI coverage of AVG and COUNT stays at or above 1−δ within tolerance.
func TestStatisticalCoverage(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 60
	}
	const delta = 0.05
	ctx := context.Background()
	for _, par := range []int{1, 4} {
		for _, d := range coverageDists() {
			t.Run(fmt.Sprintf("%s/P=%d", d.name, par), func(t *testing.T) {
				avgMiss, cntMiss := 0, 0
				for trial := 0; trial < trials; trial++ {
					tab, mean, above := buildCoverageTable(t, d, uint64(trial)+1)
					opts := []Option{
						WithDelta(delta),
						WithRoundRows(150),
						WithMaxRows(600), // stop mid-scan: partial-coverage CIs
						WithSeed(uint64(trial) * 31),
						WithParallelism(par),
					}
					res, err := tab.Query(ctx, Avg("v"), opts...)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Groups) != 1 {
						t.Fatalf("trial %d: %d groups", trial, len(res.Groups))
					}
					if !res.Groups[0].Avg.Contains(mean) {
						avgMiss++
					}
					cres, err := tab.Query(ctx, CountRows().WhereGreater("v", 20), opts...)
					if err != nil {
						t.Fatal(err)
					}
					if len(cres.Groups) == 1 && !cres.Groups[0].Count.Contains(float64(above)) {
						cntMiss++
					}
				}
				maxMiss := (delta + coverageTolerance) * float64(trials)
				if float64(avgMiss) > maxMiss {
					t.Errorf("P=%d: AVG coverage %.3f below 1-δ (%d/%d misses)",
						par, 1-float64(avgMiss)/float64(trials), avgMiss, trials)
				}
				if float64(cntMiss) > maxMiss {
					t.Errorf("P=%d: COUNT coverage %.3f below 1-δ (%d/%d misses)",
						par, 1-float64(cntMiss)/float64(trials), cntMiss, trials)
				}
			})
		}
	}
}

// buildWideCoverageTable synthesizes one trial's table with a skewed
// categorical column alongside the continuous value, returning the true
// median (the engine's order-statistic definition), the true population
// variance, and the true distinct-category count.
func buildWideCoverageTable(t *testing.T, d coverageDist, seed uint64) (tab *Table, median, variance float64, distinct int) {
	t.Helper()
	const rows = 2500
	rng := rand.New(rand.NewPCG(seed, 0xdecaf))
	tb, err := NewTableBuilder(Column{Name: "v", Kind: Float}, Column{Name: "c", Kind: Categorical})
	if err != nil {
		t.Fatal(err)
	}
	var w stats.Welford
	var ecdf stats.ECDF
	seen := map[string]bool{}
	for i := 0; i < rows; i++ {
		v := d.gen(rng)
		w.Add(v)
		ecdf.Add(v)
		// Zipf-ish categories: low codes dominate, the tail is rare
		// enough that a cut-off scan usually has unseen categories.
		c := fmt.Sprintf("c%d", int(rng.ExpFloat64()*3)%12)
		seen[c] = true
		if err := tb.AppendRow(map[string]float64{"v": v}, map[string]string{"c": c}); err != nil {
			t.Fatal(err)
		}
	}
	tb.WidenBounds("v", d.lo, d.hi)
	tab, err = tb.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	return tab, ecdf.Quantile(0.5), w.Variance(), len(seen)
}

// TestWideStatisticalCoverage extends the harness to the wider surface:
// MEDIAN, VAR, and COUNT(DISTINCT) asked together on one scan, cut off
// mid-stream. The per-aggregate Bonferroni split (δ_view/3) makes the
// JOINT statement — all three intervals simultaneously cover their
// truths — hold with probability ≥ 1−δ, so the joint miss rate is what
// the harness checks (≥ 500 seeded trials per distribution; short
// mode: 60).
func TestWideStatisticalCoverage(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 60
	}
	const delta = 0.05
	ctx := context.Background()
	q := Select(Median("v"), Var("v"), CountDistinct("c"))
	for _, d := range coverageDists() {
		t.Run(d.name, func(t *testing.T) {
			jointMiss := 0
			perAgg := [3]int{}
			for trial := 0; trial < trials; trial++ {
				tab, median, variance, distinct := buildWideCoverageTable(t, d, uint64(trial)+1)
				res, err := tab.Query(ctx, q,
					WithDelta(delta),
					WithRoundRows(150),
					WithMaxRows(600), // stop mid-scan: partial-coverage CIs
					WithSeed(uint64(trial)*37))
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Groups) != 1 || len(res.Groups[0].Answers) != 3 {
					t.Fatalf("trial %d: groups %d answers %d", trial, len(res.Groups), len(res.Groups[0].Answers))
				}
				g := res.Groups[0]
				truths := [3]float64{median, variance, float64(distinct)}
				miss := false
				for k, truth := range truths {
					if !g.Answers[k].Contains(truth) {
						perAgg[k]++
						miss = true
					}
				}
				if miss {
					jointMiss++
				}
			}
			if maxMiss := (delta + coverageTolerance) * float64(trials); float64(jointMiss) > maxMiss {
				t.Errorf("joint coverage %.3f below 1-δ (%d/%d misses; per-agg MEDIAN/VAR/DISTINCT = %v)",
					1-float64(jointMiss)/float64(trials), jointMiss, trials, perAgg)
			}
		})
	}
}
