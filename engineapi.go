package fastframe

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"fastframe/internal/exec"
	"fastframe/internal/sql"
)

// Engine is the session-level entry point to FastFrame: it owns a
// registry of named tables and a δ error budget shared by every query
// of the session, and executes queries written as SQL text. An Engine
// is safe for concurrent use; queries running on different goroutines
// proceed independently (tables are immutable).
//
//	eng := fastframe.NewEngine(fastframe.WithSessionBudget(1e-12, 1000))
//	eng.Register("flights", tab)
//	res, err := eng.Query(ctx,
//	    "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%")
//
// The SQL subset understood by Query is
//
//	SELECT AVG(expr) | SUM(expr) | COUNT(*)
//	FROM table
//	[WHERE pred AND pred AND ...]
//	[GROUP BY col, ...]
//	[HAVING AGG(c) > v | HAVING AGG(c) < v]
//	[ORDER BY AGG(c) [ASC|DESC] [LIMIT k]]
//	[WITHIN p% | WITHIN ABS eps | EXACT]
//	[PARALLEL n]
//
// with predicates col = 'v', col IN ('a','b'), col > x (also >=, <,
// <=), and col BETWEEN lo AND hi. The tail clauses select the paper's
// stopping conditions: HAVING stops once every group's CI excludes the
// threshold (the result then partitions w.h.p. via DecidedAbove and
// DecidedBelow); ORDER BY ... LIMIT k stops once the top-k (DESC) or
// bottom-k (ASC) groups separate; ORDER BY without LIMIT stops once
// all groups are totally ordered; WITHIN stops at a relative or
// absolute CI-width target; EXACT (or no tail clause) scans everything
// and returns exact answers. PARALLEL n is an execution hint — scan
// with n workers (default: one per CPU; results are bit-identical
// across worker counts, see WithParallelism).
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	delta   float64 // per-query δ drawn from the session budget
	budget  float64 // total session δ (0 when untracked)
	spent   float64 // union-bound δ consumed so far
	queries int
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// NewEngine returns an empty engine. Without WithSessionBudget every
// query gets the paper's per-query default δ = 1e−15, which keeps any
// practical session effectively deterministic without adjustment
// (§4.1).
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		tables: make(map[string]*Table),
		delta:  exec.DefaultDelta,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// WithSessionBudget caps the probability that ANY query of the session
// errs at total, sized for the given number of queries: each query
// runs with δ = SessionDelta(total, queries) = total/queries, the
// union-bound split of §4.1. Queries beyond the sizing keep the same
// per-query δ; SessionError reports the (growing) union bound
// actually accumulated.
func WithSessionBudget(total float64, queries int) EngineOption {
	return func(e *Engine) {
		e.budget = total
		e.delta = SessionDelta(total, queries)
	}
}

// WithQueryDelta fixes the per-query δ directly instead of deriving it
// from a budget.
func WithQueryDelta(delta float64) EngineOption {
	return func(e *Engine) { e.delta = delta }
}

// Register adds a table to the engine under a name usable in FROM
// clauses. Registering an existing name replaces the table.
func (e *Engine) Register(name string, t *Table) error {
	if name == "" {
		return fmt.Errorf("fastframe: table name must be non-empty")
	}
	if t == nil {
		return fmt.Errorf("fastframe: table %q is nil", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[name] = t
	return nil
}

// Table returns a registered table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lookupLocked(name)
}

func (e *Engine) lookupLocked(name string) (*Table, error) {
	if t, ok := e.tables[name]; ok {
		return t, nil
	}
	names := e.namesLocked()
	if len(names) == 0 {
		return nil, fmt.Errorf("fastframe: unknown table %q (no tables registered)", name)
	}
	return nil, fmt.Errorf("fastframe: unknown table %q (registered: %v)", name, names)
}

func (e *Engine) namesLocked() []string {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tables returns the registered table names, sorted.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.namesLocked()
}

// Query compiles and executes one SQL query. The query draws its error
// probability from the session budget (override per query with
// WithDelta); the context is checked at every interval-recomputation
// round, and cancellation or an expired deadline returns the partial
// Result with Aborted set — its intervals remain valid CIs at the
// point the scan stopped.
func (e *Engine) Query(ctx context.Context, sqlText string, opts ...Option) (*Result, error) {
	c, err := sql.Compile(sqlText)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	t, err := e.lookupLocked(c.Table)
	s := runSettings{delta: e.delta}
	e.mu.RUnlock()
	if err != nil {
		return nil, err
	}

	// The PARALLEL hint sets the baseline; explicit WithParallelism
	// options override it.
	s.parallelism = c.Parallel
	s.apply(opts)
	res, err := t.runQuery(ctx, c.Query, s)
	if err != nil {
		return nil, err
	}

	// A query that ran consumed its slice of the session budget, even
	// if it was aborted early — its intervals were still reported.
	delta := s.delta
	if delta <= 0 {
		delta = exec.DefaultDelta
	}
	e.mu.Lock()
	e.queries++
	e.spent += delta
	e.mu.Unlock()
	return res, nil
}

// QueryExact compiles the SQL query and evaluates it exactly with a
// partitioned full scan — the ground truth the approximate answer
// converges to. The tail stopping clause, if any, is ignored; a
// PARALLEL hint (or WithParallelism option, which overrides it) sets
// the worker count — PARALLEL 1 restores strictly sequential
// summation. The context is checked periodically during the scan; an
// exact answer has no valid partial form, so cancellation returns
// ctx.Err().
func (e *Engine) QueryExact(ctx context.Context, sqlText string, opts ...Option) (*ExactResult, error) {
	c, err := sql.Compile(sqlText)
	if err != nil {
		return nil, err
	}
	t, err := e.Table(c.Table)
	if err != nil {
		return nil, err
	}
	if c.Parallel > 0 {
		opts = append([]Option{WithParallelism(c.Parallel)}, opts...)
	}
	return t.QueryExact(ctx, QueryBuilder{q: c.Query}, opts...)
}

// Explain compiles the SQL query and returns the logical plan
// rendering without executing it.
func (e *Engine) Explain(sqlText string) (string, error) {
	c, err := sql.Compile(sqlText)
	if err != nil {
		return "", err
	}
	return c.Query.String() + " FROM " + c.Table, nil
}

// QueriesRun returns the number of queries issued through the engine.
func (e *Engine) QueriesRun() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.queries
}

// SessionError returns the union-bound probability that any query of
// the session so far erred — the sum of the per-query δs actually
// used. While it stays at or below the WithSessionBudget total, every
// answer the session has produced is simultaneously correct with
// probability at least 1 − total.
func (e *Engine) SessionError() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.spent
}

// SessionBudget returns the total session δ configured with
// WithSessionBudget (0 when untracked) and the per-query δ in use.
func (e *Engine) SessionBudget() (total, perQuery float64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.budget, e.delta
}
