package fastframe

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"fastframe/internal/blockstore"
	"fastframe/internal/exec"
	"fastframe/internal/sql"
	"fastframe/internal/star"
)

// Engine is the session-level entry point to FastFrame: it owns a
// registry of named tables and a δ error budget shared by every query
// of the session, and executes queries written as SQL text. An Engine
// is safe for concurrent use; queries running on different goroutines
// proceed independently (tables are immutable).
//
//	eng := fastframe.NewEngine(fastframe.WithSessionBudget(1e-12, 1000))
//	eng.Register("flights", tab)
//	res, err := eng.Query(ctx,
//	    "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%")
//
// The SQL subset understood by Query is
//
//	SELECT AVG(expr) | SUM(expr) | COUNT(*)
//	FROM table
//	[WHERE pred AND pred AND ...]
//	[GROUP BY col, ...]
//	[HAVING AGG(c) > v | HAVING AGG(c) < v]
//	[ORDER BY AGG(c) [ASC|DESC] [LIMIT k]]
//	[WITHIN p% | WITHIN ABS eps | EXACT]
//	[PARALLEL n]
//
// with predicates col = 'v', col IN ('a','b'), col > x (also >=, <,
// <=), and col BETWEEN lo AND hi. The tail clauses select the paper's
// stopping conditions: HAVING stops once every group's CI excludes the
// threshold (the result then partitions w.h.p. via DecidedAbove and
// DecidedBelow); ORDER BY ... LIMIT k stops once the top-k (DESC) or
// bottom-k (ASC) groups separate; ORDER BY without LIMIT stops once
// all groups are totally ordered; WITHIN stops at a relative or
// absolute CI-width target; EXACT (or no tail clause) scans everything
// and returns exact answers. PARALLEL n is an execution hint — scan
// with n workers (default: one per CPU; results are bit-identical
// across worker counts, see WithParallelism).
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	dims    map[string]*Dimension        // dimension registry, by name
	attach  map[string]map[string]string // parent (table or dim) → column → dim name
	delta   float64                      // per-query δ drawn from the session budget
	budget  float64                      // total session δ (0 when untracked)
	spent   float64                      // union-bound δ consumed so far
	queries int
	plans   planCache // compiled-statement cache keyed by SQL text
}

// DefaultPlanCacheSize is the number of compiled statements Engine
// keeps per session (least-recently-used eviction) unless overridden
// with WithPlanCacheSize.
const DefaultPlanCacheSize = 256

// planCache is an LRU cache of prepared statement templates keyed by
// the exact SQL text. Engine.Query and Engine.Prepare both consult it,
// so repeated traffic — one-shot or prepared — skips the lexer, parser
// and planner entirely after the first occurrence of a statement.
type planCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used; elements hold *planEntry
	m            map[string]*list.Element
	hits, misses int
}

type planEntry struct {
	key  string
	tmpl *sql.Template
}

func (c *planCache) init(capacity int) {
	c.cap = capacity
	c.ll = list.New()
	c.m = make(map[string]*list.Element)
}

func (c *planCache) get(key string) *sql.Template {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*planEntry).tmpl
	}
	c.misses++
	return nil
}

func (c *planCache) put(key string, tmpl *sql.Template) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planEntry).tmpl = tmpl
		return
	}
	c.m[key] = c.ll.PushFront(&planEntry{key: key, tmpl: tmpl})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*planEntry).key)
	}
}

func (c *planCache) stats() (hits, misses, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// NewEngine returns an empty engine. Without WithSessionBudget every
// query gets the paper's per-query default δ = 1e−15, which keeps any
// practical session effectively deterministic without adjustment
// (§4.1).
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		tables: make(map[string]*Table),
		dims:   make(map[string]*Dimension),
		attach: make(map[string]map[string]string),
		delta:  exec.DefaultDelta,
	}
	e.plans.init(DefaultPlanCacheSize)
	for _, o := range opts {
		o(e)
	}
	return e
}

// WithSessionBudget caps the probability that ANY query of the session
// errs at total, sized for the given number of queries: each query
// runs with δ = SessionDelta(total, queries) = total/queries, the
// union-bound split of §4.1. Queries beyond the sizing keep the same
// per-query δ; SessionError reports the (growing) union bound
// actually accumulated.
func WithSessionBudget(total float64, queries int) EngineOption {
	return func(e *Engine) {
		e.budget = total
		e.delta = SessionDelta(total, queries)
	}
}

// WithQueryDelta fixes the per-query δ directly instead of deriving it
// from a budget.
func WithQueryDelta(delta float64) EngineOption {
	return func(e *Engine) { e.delta = delta }
}

// WithPlanCacheSize sets how many compiled statements the engine
// caches (default DefaultPlanCacheSize, LRU eviction); n ≤ 0 disables
// the cache, so every Query/Prepare re-parses its SQL text.
func WithPlanCacheSize(n int) EngineOption {
	return func(e *Engine) { e.plans.init(n) }
}

// Register adds a table to the engine under a name usable in FROM
// clauses. Registering an existing name replaces the table. For
// out-of-core tables the registered name becomes the store's label, so
// storage errors and fault stats identify the table as queries know it
// rather than by file path.
func (e *Engine) Register(name string, t *Table) error {
	if name == "" {
		return fmt.Errorf("fastframe: table name must be non-empty")
	}
	if t == nil {
		return fmt.Errorf("fastframe: table %q is nil", name)
	}
	t.t.SetLabel(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[name] = t
	return nil
}

// Table returns a registered table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lookupLocked(name)
}

func (e *Engine) lookupLocked(name string) (*Table, error) {
	if t, ok := e.tables[name]; ok {
		return t, nil
	}
	names := e.namesLocked()
	if len(names) == 0 {
		return nil, fmt.Errorf("fastframe: unknown table %q (no tables registered)", name)
	}
	return nil, fmt.Errorf("fastframe: unknown table %q (registered: %v)", name, names)
}

func (e *Engine) namesLocked() []string {
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Tables returns the registered table names, sorted.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.namesLocked()
}

// RegisterDimension adds a dimension table to the engine under a name
// usable in JOIN clauses. Registering an existing name replaces the
// dimension; like table replacement, the new contents are picked up at
// the next run of any statement — including statements already held by
// the plan cache or prepared as a Stmt, since dimension predicates
// resolve at bind time, not compile time. Register fully-built
// dimensions: the engine reads them without locking during queries.
func (e *Engine) RegisterDimension(name string, d *Dimension) error {
	if name == "" {
		return fmt.Errorf("fastframe: dimension name must be non-empty")
	}
	if d == nil {
		return fmt.Errorf("fastframe: dimension %q is nil", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dims[name] = d
	return nil
}

// AttachDimension declares that parent's column holds the keys of the
// named dimension, enabling "JOIN dimName ON parent.column =
// dimName.key" in SQL. parent is a fact table name (a star arm: column
// is a categorical foreign-key column) or another dimension's name (a
// snowflake chain: column is an attribute of that dimension). The
// dimension must already be registered; the parent may be registered
// or replaced later — the linkage is validated when a joining
// statement runs. Re-attaching a column replaces the linkage.
func (e *Engine) AttachDimension(parent, column, dimName string) error {
	if parent == "" || column == "" {
		return fmt.Errorf("fastframe: AttachDimension needs a parent and a column")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.dims[dimName]; !ok {
		return fmt.Errorf("fastframe: unknown dimension %q (RegisterDimension first)", dimName)
	}
	cols := e.attach[parent]
	if cols == nil {
		cols = make(map[string]string)
		e.attach[parent] = cols
	}
	cols[column] = dimName
	return nil
}

// Dimensions returns the registered dimension names, sorted.
func (e *Engine) Dimensions() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.dims))
	for n := range e.dims {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolveJoins compiles a statement's JOIN clauses and dimension
// predicates into fact-side IN atoms against the engine's CURRENT
// dimension registry — the bind-time counterpart of FROM-table
// resolution, so re-registered dimensions take effect on the next run
// even for cached plans and prepared statements. Joins are processed
// children-first (a snowflake child's key set folds into an IN
// predicate over its parent's attribute), then each star arm extends
// the fact predicate through the same star.Schema path the hand-built
// StarSchema API uses, keeping the two byte-identical.
func (e *Engine) resolveJoins(t *Table, c sql.Compiled) (sql.Compiled, error) {
	if len(c.Joins) == 0 {
		return c, nil
	}
	e.mu.RLock()
	dims := make(map[string]*Dimension, len(c.Joins))
	attach := make(map[string]string, len(c.Joins))
	var missing []string
	for _, j := range c.Joins {
		if d, ok := e.dims[j.Dim]; ok {
			dims[j.Dim] = d
		} else {
			missing = append(missing, j.Dim)
		}
		if dim, ok := e.attach[j.Parent][j.ParentColumn]; ok {
			attach[j.Parent+"."+j.ParentColumn] = dim
		}
	}
	registered := make([]string, 0, len(e.dims))
	for n := range e.dims {
		registered = append(registered, n)
	}
	e.mu.RUnlock()

	if len(missing) > 0 {
		sort.Strings(registered)
		return c, fmt.Errorf("fastframe: unknown dimension %q (registered: %v)", missing[0], registered)
	}

	// Attribute predicates per dimension, in statement order.
	attrPreds := make(map[string][]star.AttrPred, len(c.Joins))
	for _, dp := range c.DimPreds {
		var p star.AttrPred
		switch dp.Op {
		case sql.PredEq:
			p = star.Eq(dp.Attr, dp.Values[0])
		case sql.PredNe:
			p = star.Ne(dp.Attr, dp.Values[0])
		default: // sql.PredIn
			p = star.In(dp.Attr, dp.Values...)
		}
		attrPreds[dp.Dim] = append(attrPreds[dp.Dim], p)
	}

	// Children before parents: joins are in statement order and a
	// parent always precedes its children (the parser enforces it), so
	// the reverse walk has every child's key set ready when its parent
	// folds it in via the snowflake chaining step.
	keys := make(map[string][]string, len(c.Joins))
	for i := len(c.Joins) - 1; i >= 0; i-- {
		j := c.Joins[i]
		if dim := attach[j.Parent+"."+j.ParentColumn]; dim != j.Dim {
			return c, fmt.Errorf("fastframe: no dimension %q attached to %s.%s (declare the linkage with AttachDimension(%q, %q, %q))",
				j.Dim, j.Parent, j.ParentColumn, j.Parent, j.ParentColumn, j.Dim)
		}
		ps := attrPreds[j.Dim]
		for k := i + 1; k < len(c.Joins); k++ {
			if c.Joins[k].Parent == j.Dim {
				ps = append(ps, star.ChainIn(c.Joins[k].ParentColumn, keys[c.Joins[k].Dim]))
			}
		}
		ks, err := dims[j.Dim].d.KeysMatching(ps...)
		if err != nil {
			return c, fmt.Errorf("fastframe: JOIN %s: %w", j.Dim, err)
		}
		keys[j.Dim] = ks
	}

	// Star arms extend the fact predicate in statement order. Attaching
	// through star.Schema validates the foreign-key column up front; the
	// IN atom then carries the key set computed above — the same sorted
	// set the hand-built StarSchema/CompileWhereAll path produces, so
	// the two compilations are byte-identical.
	schema := star.NewSchema(t.t)
	pred := c.Query.Pred
	for _, j := range c.Joins {
		if j.Parent != c.Table {
			continue
		}
		if schema.Dimension(j.ParentColumn) == nil {
			if err := schema.Attach(j.ParentColumn, dims[j.Dim].d); err != nil {
				return c, fmt.Errorf("fastframe: JOIN %s: %w", j.Dim, err)
			}
		}
		pred = pred.AndCatIn(j.ParentColumn, keys[j.Dim]...)
	}
	c.Query.Pred = pred
	return c, nil
}

// template resolves SQL text to a prepared-statement template via the
// plan cache: a hit skips the lexer, parser and planner entirely.
func (e *Engine) template(sqlText string) (*sql.Template, error) {
	if t := e.plans.get(sqlText); t != nil {
		return t, nil
	}
	t, err := sql.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	e.plans.put(sqlText, t)
	return t, nil
}

// recordRun is the one place session accounting happens. The rule: a
// query is counted in QueriesRun if and only if it produced a result —
// complete, exhausted, and aborted-with-partial-intervals runs alike;
// a run that failed before producing a result counts nothing. The δ
// budget is additionally charged for approximate results only: an
// approximate answer spends the error probability its intervals
// consumed even when the scan was aborted early (the partial intervals
// were still reported), while an exact answer is deterministic and
// δ-free.
func (e *Engine) recordRun(delta float64, exact bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queries++
	if exact {
		return
	}
	if delta <= 0 {
		delta = exec.DefaultDelta
	}
	e.spent += delta
}

// settings resolves the per-run configuration: the session δ, then the
// statement's PARALLEL hint, then explicit options (which override the
// hint).
func (e *Engine) settings(c sql.Compiled, opts []Option) runSettings {
	e.mu.RLock()
	s := runSettings{delta: e.delta}
	e.mu.RUnlock()
	s.parallelism = c.Parallel
	s.apply(opts)
	return s
}

// run executes one bound, planned statement approximately.
func (e *Engine) run(ctx context.Context, c sql.Compiled, opts []Option) (*Result, error) {
	t, err := e.Table(c.Table)
	if err != nil {
		return nil, err
	}
	if c, err = e.resolveJoins(t, c); err != nil {
		return nil, err
	}
	s := e.settings(c, opts)
	res, err := t.runQuery(ctx, c.Query, s)
	if err != nil {
		return nil, err
	}
	e.recordRun(s.delta, false)
	return res, nil
}

// runExact executes one bound, planned statement exactly, ignoring its
// tail stopping clause.
func (e *Engine) runExact(ctx context.Context, c sql.Compiled, opts []Option) (*ExactResult, error) {
	t, err := e.Table(c.Table)
	if err != nil {
		return nil, err
	}
	if c, err = e.resolveJoins(t, c); err != nil {
		return nil, err
	}
	if c.Parallel > 0 {
		opts = append([]Option{WithParallelism(c.Parallel)}, opts...)
	}
	res, err := t.QueryExact(ctx, QueryBuilder{q: c.Query}, opts...)
	if err != nil {
		return nil, err
	}
	e.recordRun(0, true)
	return res, nil
}

// stream starts one bound, planned statement as a pull-based cursor.
func (e *Engine) streamRun(ctx context.Context, c sql.Compiled, opts []Option) (*Rows, error) {
	t, err := e.Table(c.Table)
	if err != nil {
		return nil, err
	}
	if c, err = e.resolveJoins(t, c); err != nil {
		return nil, err
	}
	s := e.settings(c, opts)
	return t.stream(ctx, c.Query, s, func(res *Result, err error) {
		if err == nil {
			e.recordRun(s.delta, false)
		}
	}), nil
}

// bindText resolves SQL text through the plan cache and binds it with
// no arguments, rejecting parameterized statements with a hint toward
// Prepare.
func (e *Engine) bindText(sqlText string) (sql.Compiled, error) {
	tmpl, err := e.template(sqlText)
	if err != nil {
		return sql.Compiled{}, err
	}
	if n := tmpl.NumParams(); n > 0 {
		return sql.Compiled{}, fmt.Errorf("fastframe: query has %d parameter placeholder(s) '?'; use Engine.Prepare and bind arguments", n)
	}
	return tmpl.Bind()
}

// Query compiles and executes one SQL query. Compilation goes through
// the engine's plan cache, so repeated query texts skip parsing and
// planning entirely (prepare explicitly with Engine.Prepare to also
// bind '?' parameters). The query draws its error probability from the
// session budget (override per query with WithDelta); the context is
// checked at every interval-recomputation round, and cancellation or
// an expired deadline returns the partial Result with Aborted set —
// its intervals remain valid CIs at the point the scan stopped.
func (e *Engine) Query(ctx context.Context, sqlText string, opts ...Option) (*Result, error) {
	c, err := e.bindText(sqlText)
	if err != nil {
		return nil, err
	}
	return e.run(ctx, c, opts)
}

// QueryExact compiles the SQL query and evaluates it exactly with a
// partitioned full scan — the ground truth the approximate answer
// converges to. The tail stopping clause, if any, is ignored; a
// PARALLEL hint (or WithParallelism option, which overrides it) sets
// the worker count — PARALLEL 1 restores strictly sequential
// summation. The context is checked periodically during the scan; an
// exact answer has no valid partial form, so cancellation returns
// ctx.Err(). An exact query counts toward QueriesRun but — being
// deterministic — charges nothing to the session δ budget (see
// recordRun for the full accounting rule).
func (e *Engine) QueryExact(ctx context.Context, sqlText string, opts ...Option) (*ExactResult, error) {
	c, err := e.bindText(sqlText)
	if err != nil {
		return nil, err
	}
	return e.runExact(ctx, c, opts)
}

// Stream compiles one SQL query and starts it as a pull-based cursor
// over per-round interval snapshots — see Rows. For parameterized
// statements use Engine.Prepare and Stmt.Stream.
func (e *Engine) Stream(ctx context.Context, sqlText string, opts ...Option) (*Rows, error) {
	c, err := e.bindText(sqlText)
	if err != nil {
		return nil, err
	}
	return e.streamRun(ctx, c, opts)
}

// Explain compiles the SQL query (through the plan cache) and returns
// the full logical plan rendering without executing it: aggregate,
// table, joins, predicates, grouping, the stopping rule the tail
// clause compiles to, the parallelism hint, and any '?' parameter
// slots. For a parameterless statement with JOIN clauses the rendering
// additionally shows the bind-time join compilation against the
// current registry — each fact-side IN atom with its key-set size; for
// parameterized statements, bind first (Stmt.Bind) and use
// BoundStmt.Explain to see the compiled key sets.
func (e *Engine) Explain(sqlText string) (string, error) {
	tmpl, err := e.template(sqlText)
	if err != nil {
		return "", err
	}
	plan := tmpl.Explain()
	if tmpl.NumParams() == 0 {
		if c, err := tmpl.Bind(); err == nil {
			plan += e.explainJoins(c)
			plan += e.explainScanPrune(c)
		}
	}
	return plan, nil
}

// explainScanPrune renders the static block-pruning prospect of a bound
// statement's WHERE clause against the registered FROM table: one line
// per float-range atom showing its zone-map prunability, and a summary
// line for the combined mask (categorical bitmaps ∧ IN unions ∧ zone
// maps) — how much of the scramble the scan rules out before fetching a
// single block. Resolution failures render nothing: the logical plan is
// still valid, only the current registry cannot quantify it.
func (e *Engine) explainScanPrune(c sql.Compiled) string {
	t, err := e.Table(c.Table)
	if err != nil {
		return ""
	}
	if resolved, err := e.resolveJoins(t, c); err == nil {
		c = resolved
	}
	st, err := exec.PredicateScanStats(t.t, c.Query.Pred)
	if err != nil {
		return ""
	}
	var b strings.Builder
	for _, r := range st.Ranges {
		fmt.Fprintf(&b, "\n  PRUNE %s (zone map)", r)
	}
	switch {
	case st.Empty:
		fmt.Fprintf(&b, "\n  PRUNE scan: 0 of %d blocks possible — provably empty view", st.NumBlocks)
	case st.Masked:
		fmt.Fprintf(&b, "\n  PRUNE scan: %d of %d blocks possible", st.Possible, st.NumBlocks)
	}
	return b.String()
}

// explainJoins renders the bind-time join compilation of a bound
// statement: one line per star arm with the fact-side IN atom's
// key-set size. An empty key set — which no SQL surface syntax can
// spell as "IN ()" — renders as the provably empty view it compiles
// to. Resolution failures render as a note instead of failing the
// explain: the plan itself is still valid, only the current registry
// cannot satisfy it.
func (e *Engine) explainJoins(c sql.Compiled) string {
	if len(c.Joins) == 0 {
		return ""
	}
	t, err := e.Table(c.Table)
	if err != nil {
		return fmt.Sprintf("\n  COMPILE JOIN: unresolved (%v)", err)
	}
	before := len(c.Query.Pred.CatIn)
	resolved, err := e.resolveJoins(t, c)
	if err != nil {
		return fmt.Sprintf("\n  COMPILE JOIN: unresolved (%v)", err)
	}
	var b strings.Builder
	atoms := resolved.Query.Pred.CatIn[before:]
	i := 0
	for _, j := range c.Joins {
		if j.Parent != c.Table || i >= len(atoms) {
			continue
		}
		atom := atoms[i]
		i++
		if len(atom.Values) == 0 {
			fmt.Fprintf(&b, "\n  COMPILE JOIN %s → %s IN ∅ — provably empty view, resolved without fetching any block", j.Dim, atom.Column)
			continue
		}
		fmt.Fprintf(&b, "\n  COMPILE JOIN %s → %s IN %d key(s): %s", j.Dim, atom.Column, len(atom.Values), previewKeys(atom.Values))
	}
	return b.String()
}

// previewKeys renders a key set for explain output, eliding long sets.
func previewKeys(keys []string) string {
	const max = 8
	if len(keys) <= max {
		return strings.Join(keys, ", ")
	}
	return strings.Join(keys[:max], ", ") + fmt.Sprintf(", … (%d more)", len(keys)-max)
}

// SharedScanStats aggregates the cooperative-scan counters of every
// registered table — how much physical scanning WithSharedScan queries
// shared. Tables registered under several names are counted once per
// distinct Table value.
func (e *Engine) SharedScanStats() SharedScanStats {
	e.mu.RLock()
	seen := make(map[*Table]bool, len(e.tables))
	tabs := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		if !seen[t] {
			seen[t] = true
			tabs = append(tabs, t)
		}
	}
	e.mu.RUnlock()
	var out SharedScanStats
	for _, t := range tabs {
		s := t.SharedScanStats()
		out.QueriesServed += s.QueriesServed
		out.BlocksFetched += s.BlocksFetched
		out.BlocksDemanded += s.BlocksDemanded
	}
	return out
}

// PoolStats aggregates the buffer-pool counters of every registered
// out-of-core table. Tables sharing one pool are counted once; budgets
// and usage sum across distinct pools. All-resident engines report zero
// stats.
func (e *Engine) PoolStats() PoolStats {
	e.mu.RLock()
	seen := make(map[*Table]bool, len(e.tables))
	tabs := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		if !seen[t] {
			seen[t] = true
			tabs = append(tabs, t)
		}
	}
	e.mu.RUnlock()
	var out PoolStats
	seenPools := map[*blockstore.Pool]bool{}
	for _, t := range tabs {
		p := t.t.Pool()
		if p == nil || seenPools[p] {
			continue
		}
		seenPools[p] = true
		s := t.PoolStats()
		out.BudgetBytes += s.BudgetBytes
		out.UsedBytes += s.UsedBytes
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Prefetched += s.Prefetched
		out.BytesRead += s.BytesRead
		out.IOErrors += s.IOErrors
		out.ChecksumFailures += s.ChecksumFailures
		out.Retries += s.Retries
		out.QuarantinedBlocks += s.QuarantinedBlocks
	}
	return out
}

// StorageStats reports the per-table storage fault counters of every
// registered out-of-core table, sorted by table name. Resident tables
// have no storage to fail and are omitted; tables registered under
// several names report once per name (the label carries the most
// recently registered name).
func (e *Engine) StorageStats() []TableStorageStats {
	e.mu.RLock()
	names := e.namesLocked()
	tabs := make([]*Table, len(names))
	for i, n := range names {
		tabs[i] = e.tables[n]
	}
	e.mu.RUnlock()
	var out []TableStorageStats
	for i, t := range tabs {
		s := t.t.Store()
		if s == nil {
			continue
		}
		fs := s.FaultStats()
		out = append(out, TableStorageStats{
			Table:             names[i],
			Version:           s.Version(),
			IOErrors:          fs.IOErrors,
			ChecksumFailures:  fs.ChecksumFailures,
			Retries:           fs.Retries,
			QuarantinedBlocks: fs.QuarantinedBlocks,
			LastFaultUnixNano: fs.LastFaultUnixNano,
		})
	}
	return out
}

// PlanCacheStats reports the plan cache's lifetime hit/miss counters
// and current size.
func (e *Engine) PlanCacheStats() (hits, misses, size int) {
	return e.plans.stats()
}

// QueriesRun returns the number of queries issued through the engine.
func (e *Engine) QueriesRun() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.queries
}

// SessionError returns the union-bound probability that any query of
// the session so far erred — the sum of the per-query δs actually
// used. While it stays at or below the WithSessionBudget total, every
// answer the session has produced is simultaneously correct with
// probability at least 1 − total.
func (e *Engine) SessionError() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.spent
}

// SessionBudget returns the total session δ configured with
// WithSessionBudget (0 when untracked) and the per-query δ in use.
func (e *Engine) SessionBudget() (total, perQuery float64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.budget, e.delta
}
