// Package fastframe is a sampling-optimized in-memory column store for
// approximate aggregate queries with distribution-sensitive,
// sample-size-independent confidence-interval guarantees. It reproduces
// the system of Macke, Aliakbarpour, Diakonikolas, Parameswaran and
// Rubinfeld, "Rapid Approximate Aggregation with Distribution-Sensitive
// Interval Guarantees" (ICDE 2021).
//
// The package answers AVG, SUM and COUNT queries — with predicates and
// GROUP BY — from a scramble (a randomly permuted copy of the table),
// stopping as soon as rigorous confidence intervals are tight enough for
// the query's purpose: a requested error budget, a HAVING threshold
// decided, a top-K separated, or all groups ordered. The intervals hold
// for every sample size (PAC semantics, Definition 1 of the paper), not
// just asymptotically.
//
// The headline bounder is BernsteinRT: the empirical Bernstein–Serfling
// inequality (no pessimistic mass allocation) wrapped with the paper's
// RangeTrim meta-algorithm (no phantom outlier sensitivity). Hoeffding-
// style and Anderson/DKW bounders are provided for comparison, along
// with the Scan / ActiveSync / ActivePeek sampling strategies and a
// simulated Flights workload mirroring the paper's evaluation.
//
// Quick start — SQL through an Engine session:
//
//	tab, _ := fastframe.GenerateFlights(1_000_000, 42)
//	eng := fastframe.NewEngine()
//	eng.Register("flights", tab)
//	res, _ := eng.Query(ctx,
//		"SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%")
//	fmt.Println(res.Groups[0].Avg) // e.g. [11.2, 12.4] around 11.8
//
// or the fluent builder against a Table:
//
//	q := fastframe.Avg("DepDelay").
//		Where("Origin", "ORD").
//		StopAtRelError(0.05)
//	res, _ := tab.Query(ctx, q, fastframe.WithDelta(1e-12))
//
// Repeated traffic prepares once and binds '?' parameters per run —
// and can pull the tightening intervals round by round instead of
// waiting for the final answer:
//
//	stmt, _ := eng.Prepare(
//		"SELECT AVG(DepDelay) FROM flights WHERE Origin = ? WITHIN ?%")
//	res, _ := stmt.Query(ctx, "ORD", 5.0)
//	rows, _ := stmt.Stream(ctx, "LAX", 1.0)
//	defer rows.Close()
//	for p := range rows.Rounds() {
//		fmt.Println(p.Round, p.Groups[0].Avg)
//	}
//
// (One-shot Engine.Query text is cached in an LRU plan cache, so it
// skips re-parsing too; the fastframe/driver package additionally
// exposes the engine through database/sql.)
//
// Execution is context-aware: cancellation or a deadline stops the
// scan at the next round boundary and returns the partial result with
// still-valid intervals (Result.Aborted is set). An Engine additionally
// maintains a session-level δ error budget across queries.
package fastframe

// Version is the library version.
const Version = "1.0.0"
