package fastframe

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// airportsDim assigns region and state attributes to every Origin of
// the fact table, deterministically from dictionary order.
func airportsDim(t testing.TB, tab *Table) *Dimension {
	t.Helper()
	origins, err := tab.CategoricalValues("Origin")
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"west", "east", "south"}
	states := []string{"CA", "NY", "TX", "WA"}
	d := NewDimension("airports")
	for i, code := range origins {
		d.Add(code, map[string]string{
			"region": regions[i%len(regions)],
			"state":  states[i%len(states)],
		})
	}
	return d
}

// statesDim is the snowflake second level: state → zone.
func statesDim() *Dimension {
	d := NewDimension("states")
	d.Add("CA", map[string]string{"zone": "pacific"})
	d.Add("WA", map[string]string{"zone": "pacific"})
	d.Add("NY", map[string]string{"zone": "atlantic"})
	d.Add("TX", map[string]string{"zone": "gulf"})
	return d
}

// starEngine wires the fact table plus the airports → states snowflake
// into an engine.
func starEngine(t testing.TB, tab *Table) *Engine {
	t.Helper()
	eng := NewEngine(WithQueryDelta(1e-9))
	if err := eng.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterDimension("airports", airportsDim(t, tab)); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterDimension("states", statesDim()); err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachDimension("flights", "Origin", "airports"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AttachDimension("airports", "state", "states"); err != nil {
		t.Fatal(err)
	}
	return eng
}

// sameResult compares two approximate results byte-for-byte modulo
// wall-clock duration.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	g, w := *got, *want
	g.Duration, w.Duration = 0, 0
	if !reflect.DeepEqual(g, w) {
		t.Errorf("%s: SQL JOIN result differs from hand-built star path:\n got %+v\nwant %+v", label, g, w)
	}
}

// TestSQLJoinMatchesHandBuiltStar is the acceptance property: for
// fixed seeds, a SQL JOIN with a dimension predicate is byte-identical
// — estimates, intervals, samples, rounds, blocks fetched — to the
// hand-compiled StarSchema/AndCatIn path, sequentially and under
// partitioned parallelism, for converged, aborted, and exact runs.
func TestSQLJoinMatchesHandBuiltStar(t *testing.T) {
	tab := smallFlights(t)
	eng := starEngine(t, tab)
	airports := airportsDim(t, tab)
	ss := NewStarSchema(tab)
	if err := ss.Attach("Origin", airports); err != nil {
		t.Fatal(err)
	}

	stmt, err := eng.Prepare("SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region = ? AND DepDelay > -60 " +
		"GROUP BY DayOfWeek WITHIN 40%")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, par := range []int{1, 4} {
		for _, seed := range []uint64{1, 2, 3} {
			opts := []Option{WithDelta(1e-9), WithRoundRows(2000), WithSeed(seed), WithParallelism(par)}

			hand := Avg("DepDelay").WhereGreater("DepDelay", -60).
				GroupBy("DayOfWeek").StopAtRelError(0.4)
			hand, err := ss.WhereDimension(hand, "Origin", "region", "west")
			if err != nil {
				t.Fatal(err)
			}

			bound, err := stmt.Bind("west")
			if err != nil {
				t.Fatal(err)
			}
			got, err := bound.Query(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ss.Query(ctx, hand, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Groups) == 0 {
				t.Fatal("hand-built star query returned no groups")
			}
			sameResult(t, labelPS(par, seed), got, want)

			// Aborted mid-scan: stop after the first round from the
			// progress callback; both paths abort at the same barrier.
			abort := WithProgress(func(p Progress) bool { return p.Round < 1 })
			gotA, err := bound.Query(ctx, append(opts, abort)...)
			if err != nil {
				t.Fatal(err)
			}
			wantA, err := ss.Query(ctx, hand, append(opts, abort)...)
			if err != nil {
				t.Fatal(err)
			}
			if !wantA.Aborted {
				t.Fatal("progress abort did not set Aborted")
			}
			sameResult(t, labelPS(par, seed)+" aborted", gotA, wantA)

			// Exact evaluation of the same join view.
			gotE, err := bound.QueryExact(ctx, WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			wantE, err := tab.QueryExact(ctx, hand, WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			ge, we := *gotE, *wantE
			ge.Duration, we.Duration = 0, 0
			if !reflect.DeepEqual(ge, we) {
				t.Errorf("%s exact: %+v vs %+v", labelPS(par, seed), ge, we)
			}
		}
	}
}

func labelPS(par int, seed uint64) string {
	return "P=" + string(rune('0'+par)) + " seed=" + string(rune('0'+seed))
}

// TestSQLJoinInAndNotMatchHandBuilt covers the richer dimension
// predicate forms: IN lists and != against the WhereDimensionIn /
// WhereDimensionNot star helpers.
func TestSQLJoinInAndNotMatchHandBuilt(t *testing.T) {
	tab := smallFlights(t)
	eng := starEngine(t, tab)
	airports := airportsDim(t, tab)
	ss := NewStarSchema(tab)
	if err := ss.Attach("Origin", airports); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := []Option{WithDelta(1e-9), WithRoundRows(2000), WithSeed(4)}

	// IN with a mix of literal and bound members.
	stmt, err := eng.Prepare("SELECT COUNT(*) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region IN ('east', ?) WITHIN 30%")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := stmt.Bind("south")
	if err != nil {
		t.Fatal(err)
	}
	got, err := bound.Query(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	hand, err := ss.WhereDimensionIn(CountRows().StopAtRelError(0.3), "Origin", "region", "east", "south")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ss.Query(ctx, hand, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "IN", got, want)

	// != compiles to the attribute-bearing complement.
	res, err := eng.Query(ctx, "SELECT COUNT(*) FROM flights "+
		"JOIN airports ON flights.Origin = airports.key "+
		"WHERE airports.region != 'west' WITHIN 30%", opts...)
	if err != nil {
		t.Fatal(err)
	}
	handNe, err := ss.WhereDimensionNot(CountRows().StopAtRelError(0.3), "Origin", "region", "west")
	if err != nil {
		t.Fatal(err)
	}
	wantNe, err := ss.Query(ctx, handNe, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "!=", res, wantNe)
}

// TestSQLSnowflakeChainMatchesHandBuilt drives a predicate over a
// second-level dimension (zone on states) through the SQL chain
// JOIN airports … JOIN states … and checks it against the hand-chained
// compilation: states keys → airports keys → fact-side IN.
func TestSQLSnowflakeChainMatchesHandBuilt(t *testing.T) {
	tab := smallFlights(t)
	eng := starEngine(t, tab)
	airports := airportsDim(t, tab)
	states := statesDim()
	ss := NewStarSchema(tab)
	if err := ss.Attach("Origin", airports); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, par := range []int{1, 4} {
		opts := []Option{WithDelta(1e-9), WithRoundRows(2000), WithSeed(9), WithParallelism(par)}
		got, err := eng.Query(ctx, "SELECT AVG(DepDelay) FROM flights "+
			"JOIN airports ON flights.Origin = airports.key "+
			"JOIN states ON airports.state = states.key "+
			"WHERE states.zone = 'pacific' WITHIN 40%", opts...)
		if err != nil {
			t.Fatal(err)
		}

		// Hand-built chain: zone predicate → state keys → airport keys.
		stateKeys := states.KeysWhere("zone", "pacific")
		if len(stateKeys) != 2 {
			t.Fatalf("stateKeys = %v", stateKeys)
		}
		hand, err := ss.WhereDimensionIn(Avg("DepDelay").StopAtRelError(0.4), "Origin", "state", stateKeys...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ss.Query(ctx, hand, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Groups) == 0 {
			t.Fatal("chained star query returned no groups")
		}
		sameResult(t, "snowflake", got, want)
	}
}

// TestEmptyJoinViewFetchesNoBlocks pins the provably-empty-view
// contract on the SQL path: a dimension predicate matching no keys
// compiles to an empty fact-side IN, the executor resolves the scan
// without fetching a single block (sequentially and in parallel), the
// result is a valid empty one, and session accounting follows the
// recordRun rule — the approximate run still counts and charges its δ.
func TestEmptyJoinViewFetchesNoBlocks(t *testing.T) {
	tab := smallFlights(t)
	const sqlText = "SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region = 'mars' WITHIN 5%"
	for _, par := range []int{1, 4} {
		eng := starEngine(t, tab)
		res, err := eng.Query(context.Background(), sqlText,
			WithRoundRows(2000), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if res.BlocksFetched != 0 {
			t.Errorf("P=%d: provably empty view fetched %d blocks", par, res.BlocksFetched)
		}
		if len(res.Groups) != 0 {
			t.Errorf("P=%d: empty view returned groups: %+v", par, res.Groups)
		}
		if !res.Exhausted || res.Aborted {
			t.Errorf("P=%d: empty view exhausted=%v aborted=%v", par, res.Exhausted, res.Aborted)
		}
		if res.RowsCovered != tab.NumRows() {
			t.Errorf("P=%d: covered %d rows, want all %d (membership is provable for every row)",
				par, res.RowsCovered, tab.NumRows())
		}
		// recordRun rule: the run produced a (valid, empty) approximate
		// result, so it counts and charges exactly one per-query δ.
		if n := eng.QueriesRun(); n != 1 {
			t.Errorf("P=%d: QueriesRun = %d", par, n)
		}
		if spent := eng.SessionError(); spent != 1e-9 {
			t.Errorf("P=%d: SessionError = %g, want the per-query δ 1e-9", par, spent)
		}
	}

	// The grammar cannot spell "IN ()", so Explain renders the compiled
	// empty set as the provably empty view, never as bare "IN ()".
	eng := starEngine(t, tab)
	plan, err := eng.Explain(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Origin IN ∅") || !strings.Contains(plan, "provably empty view") {
		t.Errorf("Explain does not render the empty compiled IN:\n%s", plan)
	}
	if strings.Contains(plan, "IN ()") {
		t.Errorf("Explain renders an unparseable empty IN:\n%s", plan)
	}
}

// TestJoinExplainShowsCompiledKeySet covers the acceptance requirement
// that Explain shows the join and the compiled fact-side key set, for
// both the one-shot (parameterless) and bound prepared forms.
func TestJoinExplainShowsCompiledKeySet(t *testing.T) {
	tab := smallFlights(t)
	eng := starEngine(t, tab)

	plan, err := eng.Explain("SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region = 'west' WITHIN 5%")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"JOIN airports ON flights.Origin = airports.key",
		`airports.region = "west"`,
		"COMPILE JOIN airports → Origin IN",
		"key(s)",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("Explain missing %q:\n%s", want, plan)
		}
	}

	// Parameterized: the template explain shows the slot, the bound
	// explain shows the compiled key set for the bound value.
	stmt, err := eng.Prepare("SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key WHERE airports.region = ? WITHIN 5%")
	if err != nil {
		t.Fatal(err)
	}
	if p := stmt.Explain(); !strings.Contains(p, "airports.region = $1") {
		t.Errorf("template Explain missing slot:\n%s", p)
	}
	bound, err := stmt.Bind("east")
	if err != nil {
		t.Fatal(err)
	}
	bp := bound.Explain()
	if !strings.Contains(bp, `airports.region = "east"`) || !strings.Contains(bp, "COMPILE JOIN airports → Origin IN") {
		t.Errorf("bound Explain missing compiled key set:\n%s", bp)
	}

	// An unresolvable join (dimension not registered) explains as a
	// note instead of hiding the problem or failing.
	plain := NewEngine()
	if err := plain.Register("flights", tab); err != nil {
		t.Fatal(err)
	}
	p, err := plain.Explain("SELECT COUNT(*) FROM flights JOIN ghosts ON flights.Origin = ghosts.key")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "unresolved") || !strings.Contains(p, "ghosts") {
		t.Errorf("unresolvable join not surfaced:\n%s", p)
	}
}

// TestJoinResolutionErrors covers the bind-time failure modes: unknown
// dimension, missing attachment, unknown attribute, and a foreign-key
// column that is not categorical on the fact table.
func TestJoinResolutionErrors(t *testing.T) {
	tab := smallFlights(t)
	eng := starEngine(t, tab)
	ctx := context.Background()

	cases := []struct {
		sql, want string
	}{
		{"SELECT COUNT(*) FROM flights JOIN ghosts ON flights.Origin = ghosts.key",
			"unknown dimension"},
		{"SELECT COUNT(*) FROM flights JOIN states ON flights.Origin = states.key",
			"AttachDimension"},
		{"SELECT COUNT(*) FROM flights JOIN airports ON flights.Origin = airports.key WHERE airports.ghost = 'x'",
			"no attribute"},
		{"SELECT COUNT(*) FROM flights JOIN airports ON flights.DepDelay = airports.key",
			"AttachDimension"},
	}
	for _, tc := range cases {
		_, err := eng.Query(ctx, tc.sql)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %v, want mention of %q", tc.sql, err, tc.want)
		}
	}

	// A float fact column attached and joined fails at the star layer.
	if err := eng.AttachDimension("flights", "DepDelay", "airports"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query(ctx, "SELECT COUNT(*) FROM flights JOIN airports ON flights.DepDelay = airports.key")
	if err == nil || !strings.Contains(err.Error(), "foreign key") {
		t.Errorf("float FK join error = %v", err)
	}

	if err := eng.RegisterDimension("", NewDimension("x")); err == nil {
		t.Error("empty dimension name accepted")
	}
	if err := eng.RegisterDimension("x", nil); err == nil {
		t.Error("nil dimension accepted")
	}
	if err := eng.AttachDimension("flights", "Origin", "ghosts"); err == nil {
		t.Error("attaching an unregistered dimension accepted")
	}
	if got := eng.Dimensions(); len(got) != 2 || got[0] != "airports" || got[1] != "states" {
		t.Errorf("Dimensions() = %v", got)
	}
}

// TestRegisterReplaceRebindsTablesAndDimensions is the regression test
// for stale bind-time state: replacing a table AND a dimension while
// the plan cache holds the statement's Template and a prepared Stmt
// exists must be picked up by the very next run — Query, Stmt.Query,
// and Stream alike — because both the FROM table and the dimension
// registry resolve at bind time, not compile time.
func TestRegisterReplaceRebindsTablesAndDimensions(t *testing.T) {
	tabA, err := GenerateFlights(40_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := GenerateFlights(40_000, 21)
	if err != nil {
		t.Fatal(err)
	}
	// dimB maps a different airport subset to "west" than dimA.
	dimFor := func(tab *Table, stride int) *Dimension {
		origins, err := tab.CategoricalValues("Origin")
		if err != nil {
			t.Fatal(err)
		}
		d := NewDimension("airports")
		for i, code := range origins {
			region := "east"
			if i%stride == 0 {
				region = "west"
			}
			d.Add(code, map[string]string{"region": region})
		}
		return d
	}

	const joinSQL = "SELECT AVG(DepDelay) FROM flights " +
		"JOIN airports ON flights.Origin = airports.key " +
		"WHERE airports.region = ? GROUP BY DayOfWeek WITHIN 40%"
	opts := []Option{WithDelta(1e-9), WithRoundRows(2000), WithSeed(3)}
	ctx := context.Background()

	build := func(tab *Table, d *Dimension) *Engine {
		eng := NewEngine(WithQueryDelta(1e-9))
		if err := eng.Register("flights", tab); err != nil {
			t.Fatal(err)
		}
		if err := eng.RegisterDimension("airports", d); err != nil {
			t.Fatal(err)
		}
		if err := eng.AttachDimension("flights", "Origin", "airports"); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	eng := build(tabA, dimFor(tabA, 2))
	stmt, err := eng.Prepare(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	boundQuery := func(e *Engine, s *Stmt) *Result {
		b, err := s.Bind("west")
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.Query(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	before := boundQuery(eng, stmt)

	// Replace the table and the dimension under the live Stmt and the
	// warm plan cache.
	if err := eng.Register("flights", tabB); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterDimension("airports", dimFor(tabB, 3)); err != nil {
		t.Fatal(err)
	}

	// Ground truth: a fresh engine built directly on the new state.
	fresh := build(tabB, dimFor(tabB, 3))
	freshStmt, err := fresh.Prepare(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := boundQuery(fresh, freshStmt)
	{
		w, b := *want, *before
		w.Duration, b.Duration = 0, 0
		if reflect.DeepEqual(w, b) {
			t.Fatal("test fixture too weak: replacement did not change the answer")
		}
	}

	// 1. Stmt.Query on the statement prepared before replacement.
	sameResult(t, "stmt after replace", boundQuery(eng, stmt), want)

	// 2. One-shot Query through the warm plan cache — bind the same
	// value as a literal on the fresh engine for the reference.
	hits0, _, _ := eng.PlanCacheStats()
	gotQ, err := eng.Query(ctx, joinSQLLiteral, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ctx, joinSQLLiteral, opts...); err != nil {
		t.Fatal(err)
	}
	hits1, _, _ := eng.PlanCacheStats()
	if hits1 <= hits0 {
		t.Errorf("plan cache not exercised: hits %d → %d", hits0, hits1)
	}
	wantQ, err := fresh.Query(ctx, joinSQLLiteral, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "query after replace", gotQ, wantQ)

	// 3. Stream on the old Stmt: the cursor's final result must match
	// the fresh engine's one-shot answer byte-for-byte.
	boundS, err := stmt.Bind("west")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := boundS.Stream(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	gotS, err := rows.Final()
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	sameResult(t, "stream after replace", gotS, want)
}

// joinSQLLiteral is the literal-value twin of the parameterized
// statement in TestRegisterReplaceRebindsTablesAndDimensions.
const joinSQLLiteral = "SELECT AVG(DepDelay) FROM flights " +
	"JOIN airports ON flights.Origin = airports.key " +
	"WHERE airports.region = 'west' GROUP BY DayOfWeek WITHIN 40%"
