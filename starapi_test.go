package fastframe

import (
	"math"
	"strings"
	"testing"
)

func TestStarSchemaPublicAPI(t *testing.T) {
	// Fact: flights; dimension: airports with a region attribute.
	tab := smallFlights(t)
	origins, err := tab.CategoricalValues("Origin")
	if err != nil {
		t.Fatal(err)
	}
	dim := NewDimension("airports")
	for i, code := range origins {
		region := "east"
		if i%2 == 0 {
			region = "west"
		}
		dim.Add(code, map[string]string{"region": region})
	}
	if dim.NumRows() != len(origins) {
		t.Fatalf("dimension rows = %d", dim.NumRows())
	}

	ss := NewStarSchema(tab)
	if err := ss.Attach("Origin", dim); err != nil {
		t.Fatal(err)
	}
	if err := ss.Attach("DepDelay", dim); err == nil {
		t.Error("attach to float column accepted")
	}

	q := Avg("DepDelay").StopAtRelError(0.4)
	q, err = ss.WhereDimension(q, "Origin", "region", "west")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WhereDimension(q, "Origin", "ghost", "x"); err == nil {
		t.Error("unknown dimension attribute accepted")
	}

	res, err := ss.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ss.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("join view interval %v misses %v", res.Groups[0].Avg, ex.Groups[0].Avg)
	}
}

func TestLoadDimensionCSV(t *testing.T) {
	const csvData = "code,region,note\nORD,midwest,\nLAX,west,busy\n"
	d, err := LoadDimensionCSV("airports", "code", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "airports" || d.NumRows() != 2 {
		t.Fatalf("dimension = %s/%d rows", d.Name(), d.NumRows())
	}
	if keys := d.Keys(); len(keys) != 2 || keys[0] != "LAX" {
		t.Errorf("Keys = %v", keys)
	}
	if got := d.KeysWhere("region", "west"); len(got) != 1 || got[0] != "LAX" {
		t.Errorf("KeysWhere(region, west) = %v", got)
	}
	// Empty CSV cells are present-but-empty attributes, matchable as ''.
	if got := d.KeysWhere("note", ""); len(got) != 1 || got[0] != "ORD" {
		t.Errorf("KeysWhere(note, \"\") = %v", got)
	}

	if _, err := LoadDimensionCSV("d", "nope", strings.NewReader(csvData)); err == nil {
		t.Error("missing key column accepted")
	}
	if _, err := LoadDimensionCSV("d", "code", strings.NewReader("code,x\n,1\n")); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := LoadDimensionCSV("d", "code", strings.NewReader("code,x\n\"bad")); err == nil {
		t.Error("malformed CSV accepted")
	}
	if _, err := LoadDimensionCSV("d", "code", strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestWhereInPublicAPI(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").WhereIn("Airline", "NW", "HP").StopAtRelError(0.3)
	if !strings.Contains(q.String(), "IN (NW, HP)") {
		t.Errorf("String() = %q", q.String())
	}
	res, err := tab.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := tab.RunExact(q)
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("IN interval %v misses %v", res.Groups[0].Avg, ex.Groups[0].Avg)
	}
}

func TestExprAggregatePublicAPI(t *testing.T) {
	tab := smallFlights(t)
	// AVG((DepDelay)²) with derived bounds.
	q := AvgExpr(Col("DepDelay").Square()).Where("Airline", "AA").StopAtRelError(0.6)
	if !strings.Contains(q.String(), "^2") {
		t.Errorf("String() = %q", q.String())
	}
	res, err := tab.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := tab.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("squared interval %v misses %v", res.Groups[0].Avg, ex.Groups[0].Avg)
	}
	if res.Groups[0].Avg.Lo < 0 {
		t.Errorf("derived lower bound violated: %v", res.Groups[0].Avg.Lo)
	}

	// SUM over an expression.
	qs := SumExpr(Col("DepDelay").Mul(Const(0.5))).WhereIn("Airline", "NW").StopAtRelError(0.8)
	resS, err := tab.Run(qs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	exS, _ := tab.RunExact(qs)
	if !resS.Groups[0].Sum.Contains(exS.Groups[0].Sum) {
		t.Errorf("expr SUM interval %v misses %v", resS.Groups[0].Sum, exS.Groups[0].Sum)
	}
	if math.Abs(exS.Groups[0].Sum) < 1 {
		t.Errorf("expr SUM ground truth %v implausible", exS.Groups[0].Sum)
	}
}
