package fastframe

import (
	"math"
	"strings"
	"testing"
)

func TestStarSchemaPublicAPI(t *testing.T) {
	// Fact: flights; dimension: airports with a region attribute.
	tab := smallFlights(t)
	origins, err := tab.CategoricalValues("Origin")
	if err != nil {
		t.Fatal(err)
	}
	dim := NewDimension("airports")
	for i, code := range origins {
		region := "east"
		if i%2 == 0 {
			region = "west"
		}
		dim.Add(code, map[string]string{"region": region})
	}
	if dim.NumRows() != len(origins) {
		t.Fatalf("dimension rows = %d", dim.NumRows())
	}

	ss := NewStarSchema(tab)
	if err := ss.Attach("Origin", dim); err != nil {
		t.Fatal(err)
	}
	if err := ss.Attach("DepDelay", dim); err == nil {
		t.Error("attach to float column accepted")
	}

	q := Avg("DepDelay").StopAtRelError(0.4)
	q, err = ss.WhereDimension(q, "Origin", "region", "west")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.WhereDimension(q, "Origin", "ghost", "x"); err == nil {
		t.Error("unknown dimension attribute accepted")
	}

	res, err := ss.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ss.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("join view interval %v misses %v", res.Groups[0].Avg, ex.Groups[0].Avg)
	}
}

func TestWhereInPublicAPI(t *testing.T) {
	tab := smallFlights(t)
	q := Avg("DepDelay").WhereIn("Airline", "NW", "HP").StopAtRelError(0.3)
	if !strings.Contains(q.String(), "IN (NW, HP)") {
		t.Errorf("String() = %q", q.String())
	}
	res, err := tab.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, _ := tab.RunExact(q)
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("IN interval %v misses %v", res.Groups[0].Avg, ex.Groups[0].Avg)
	}
}

func TestExprAggregatePublicAPI(t *testing.T) {
	tab := smallFlights(t)
	// AVG((DepDelay)²) with derived bounds.
	q := AvgExpr(Col("DepDelay").Square()).Where("Airline", "AA").StopAtRelError(0.6)
	if !strings.Contains(q.String(), "^2") {
		t.Errorf("String() = %q", q.String())
	}
	res, err := tab.Run(q, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := tab.RunExact(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Groups[0].Avg.Contains(ex.Groups[0].Avg) {
		t.Errorf("squared interval %v misses %v", res.Groups[0].Avg, ex.Groups[0].Avg)
	}
	if res.Groups[0].Avg.Lo < 0 {
		t.Errorf("derived lower bound violated: %v", res.Groups[0].Avg.Lo)
	}

	// SUM over an expression.
	qs := SumExpr(Col("DepDelay").Mul(Const(0.5))).WhereIn("Airline", "NW").StopAtRelError(0.8)
	resS, err := tab.Run(qs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	exS, _ := tab.RunExact(qs)
	if !resS.Groups[0].Sum.Contains(exS.Groups[0].Sum) {
		t.Errorf("expr SUM interval %v misses %v", resS.Groups[0].Sum, exS.Groups[0].Sum)
	}
	if math.Abs(exS.Groups[0].Sum) < 1 {
		t.Errorf("expr SUM ground truth %v implausible", exS.Groups[0].Sum)
	}
}
