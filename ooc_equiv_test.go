package fastframe

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// writeTempTable persists tab to a temp file in the current (v3)
// format and returns the path.
func writeTempTable(t testing.TB, tab *Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "table.ff")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOutOfCoreEquivalence is the paging-invariance property: a query
// over a disk-backed table returns a byte-identical Result to the same
// query over the fully resident table — across query shapes, scan
// strategies, parallelism, and pool budgets down to a sliver of the
// table (constant mid-scan eviction). The answer may never depend on
// what happens to be cached.
func TestOutOfCoreEquivalence(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	ctx := context.Background()
	cases := []struct {
		name string
		q    QueryBuilder
	}{
		{"avg-relerr", Avg("DepDelay").Where("Origin", "ORD").StopAtRelError(0.05)},
		{"sum-having", Sum("DepDelay").GroupBy("Airline").StopWhenThresholdDecided(2000)},
		{"count-abswidth", CountRows().WhereGreater("DepTime", 1500).StopAtAbsError(3000)},
		{"avg-grouped-topk", Avg("DepDelay").GroupBy("Origin").StopWhenTopKSeparated(3)},
		// Multi-aggregate GROUP BY: the sketch states (ECDF, Welford,
		// distinct table) must also be paging-invariant — under the
		// 16 KiB budget every round of this case evicts mid-scan.
		{"multiagg-grouped",
			Select(Avg("DepDelay"), Median("DepDelay"), Var("DepDelay"), CountDistinct("Origin")).
				GroupBy("Airline").StopAtAbsError(5)},
	}

	type key struct {
		st   Strategy
		p    int
		name string
	}
	resident := map[key]*Result{}
	for _, st := range []Strategy{ScanStrategy, ActiveSyncStrategy, ActivePeekStrategy} {
		for _, p := range []int{1, 4} {
			for _, tc := range cases {
				res, err := tab.Query(ctx, tc.q, sharedCommon(WithStrategy(st), WithParallelism(p))...)
				if err != nil {
					t.Fatalf("%s/%s/P=%d resident: %v", tc.name, st, p, err)
				}
				resident[key{st, p, tc.name}] = stripTimes(res)
			}
		}
	}

	// 16 KiB holds a handful of 25-row frames of a ~1.7 MB decoded
	// table: every round evicts. 4 MiB holds everything after one pass.
	for _, budget := range []int64{1 << 14, 4 << 20} {
		pool := NewBufferPool(budget)
		ooc, err := OpenTable(path, pool)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range []Strategy{ScanStrategy, ActiveSyncStrategy, ActivePeekStrategy} {
			for _, p := range []int{1, 4} {
				for _, tc := range cases {
					res, err := ooc.Query(ctx, tc.q, sharedCommon(WithStrategy(st), WithParallelism(p))...)
					if err != nil {
						t.Fatalf("%s/%s/P=%d budget=%d out-of-core: %v", tc.name, st, p, budget, err)
					}
					if want := resident[key{st, p, tc.name}]; !reflect.DeepEqual(stripTimes(res), want) {
						t.Errorf("%s/%s/P=%d budget=%d: out-of-core differs from resident\nooc:      %+v\nresident: %+v",
							tc.name, st, p, budget, res, want)
					}
				}
			}
		}
		st := ooc.PoolStats()
		if st.Misses == 0 || st.BytesRead == 0 {
			t.Errorf("budget=%d: pool counters did not move: %+v", budget, st)
		}
		if budget == 1<<14 && st.Evictions == 0 {
			t.Errorf("budget=%d: tiny pool saw no evictions: %+v", budget, st)
		}
		if err := ooc.Close(); err != nil {
			t.Fatal(err)
		}
		pool.Close()
	}
}

// TestOutOfCoreStreamEquivalence drains a streaming cursor over the
// disk-backed table under a tiny pool and compares every per-round
// Progress snapshot — not just the final Result — against the resident
// stream. Paging must be invisible in the δ/interval trajectory too.
func TestOutOfCoreStreamEquivalence(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	ctx := context.Background()
	q := Avg("DepDelay").GroupBy("Airline").StopWhenThresholdDecided(2000)

	drain := func(tb *Table) ([]Progress, *Result) {
		rows, err := tb.Stream(ctx, q, sharedCommon()...)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var snaps []Progress
		for rows.Next() {
			snaps = append(snaps, rows.Snapshot())
		}
		res, err := rows.Final()
		if err != nil {
			t.Fatal(err)
		}
		return snaps, stripTimes(res)
	}

	resSnaps, resFinal := drain(tab)

	pool := NewBufferPool(1 << 14)
	defer pool.Close()
	ooc, err := OpenTable(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()
	oocSnaps, oocFinal := drain(ooc)

	if !reflect.DeepEqual(resFinal, oocFinal) {
		t.Errorf("stream final result differs:\nresident: %+v\nooc:      %+v", resFinal, oocFinal)
	}
	if !reflect.DeepEqual(resSnaps, oocSnaps) {
		t.Errorf("stream snapshots differ (%d vs %d rounds)", len(resSnaps), len(oocSnaps))
	}
}

// TestOutOfCoreSharedScanCohort runs a concurrent SQL cohort against a
// disk-backed table with cooperative shared scans and a pool far
// smaller than the table — evictions land mid-circulation, under
// contention — and checks every answer byte-identical to a solo replay
// over the fully resident table from the recorded start block, with δ
// accounting to match. Run with -race this doubles as the paging
// concurrency check.
func TestOutOfCoreSharedScanCohort(t *testing.T) {
	tab := smallFlights(t)
	path := writeTempTable(t, tab)
	pool := NewBufferPool(1 << 14)
	defer pool.Close()
	ooc, err := OpenTable(path, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer ooc.Close()

	eng := NewEngine(WithSessionBudget(1e-6, 100))
	if err := eng.Register("flights", ooc); err != nil {
		t.Fatal(err)
	}
	solo := NewEngine(WithSessionBudget(1e-6, 100))
	if err := solo.Register("flights", tab); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	queries := []string{
		"SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD' WITHIN 5%",
		"SELECT SUM(DepDelay) FROM flights GROUP BY Airline HAVING SUM(DepDelay) > 2000",
		"SELECT COUNT(*) FROM flights WHERE DepTime > 1500 WITHIN ABS 3000",
		"SELECT AVG(DepDelay) FROM flights GROUP BY Origin ORDER BY AVG(DepDelay) DESC LIMIT 3",
	}

	type outcome struct {
		res *Result
		err error
	}
	results := make([]outcome, len(queries))
	var wg sync.WaitGroup
	for i, sqlText := range queries {
		wg.Add(1)
		go func(i int, sqlText string) {
			defer wg.Done()
			res, err := eng.Query(ctx, sqlText, sharedCommon(WithSharedScan())...)
			results[i] = outcome{res, err}
		}(i, sqlText)
	}
	wg.Wait()

	for i, sqlText := range queries {
		if results[i].err != nil {
			t.Fatalf("%s: %v", sqlText, results[i].err)
		}
		replay, err := solo.Query(ctx, sqlText, sharedCommon(WithStartBlock(results[i].res.StartBlock))...)
		if err != nil {
			t.Fatalf("%s replay: %v", sqlText, err)
		}
		if !reflect.DeepEqual(stripTimes(results[i].res), stripTimes(replay)) {
			t.Errorf("%s: out-of-core shared run differs from resident solo replay at block %d",
				sqlText, results[i].res.StartBlock)
		}
	}

	// δ accounting is backing-independent: the cohort charged exactly
	// what the resident replays charged.
	if got, want := eng.SessionError(), solo.SessionError(); got != want {
		t.Errorf("SessionError = %g over disk, %g resident", got, want)
	}
	if st := ooc.PoolStats(); st.Evictions == 0 || st.Misses == 0 {
		t.Errorf("cohort did not stress the pool: %+v", st)
	}
}
